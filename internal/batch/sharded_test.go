package batch

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/oram"
	"repro/internal/shard"
	"repro/internal/trace"
)

func metaEngine(t *testing.T, n int, entries uint64, seed int64) *shard.Engine {
	t.Helper()
	e, err := shard.New(shard.Config{
		Shards:  n,
		Entries: entries,
		Seed:    seed,
		Build: func(s int, per uint64, sd int64) (shard.Sub, error) {
			g, err := oram.NewGeometry(oram.GeometryConfig{
				LeafBits: oram.LeafBitsFor(per), LeafZ: 4,
			})
			if err != nil {
				return shard.Sub{}, err
			}
			meter := memsim.NewMeter(memsim.DDR4Default())
			cs := oram.NewCountingStore(oram.NewMetaStore(g), meter)
			client, err := oram.NewClient(oram.ClientConfig{
				Store: cs, Rand: trace.NewRNG(sd), Evict: oram.PaperEvict,
				Timer: meter, StashHits: true, Blocks: per,
			})
			if err != nil {
				return shard.Sub{}, err
			}
			return shard.Sub{Client: client, Store: cs, Meter: meter}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunSharded drives per-shard pipeline lanes end to end and checks the
// lane accounting is consistent and deterministic across runs.
func TestRunSharded(t *testing.T) {
	const entries = 1 << 11
	stream, err := trace.Generate(trace.Config{Kind: trace.KindKaggle, N: entries, Count: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	run := func() ShardedStats {
		e := metaEngine(t, 4, entries, 9)
		st, err := RunSharded(e, ShardedPipelineConfig{
			Stream:         stream,
			S:              4,
			WindowAccesses: 1000,
			Depth:          2,
			Seed:           9,
			PrePlace:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := run()
	if len(st.Lanes) != 4 {
		t.Fatalf("expected 4 active lanes, got %d", len(st.Lanes))
	}
	var bins, accesses uint64
	windows := 0
	for _, lane := range st.Lanes {
		if lane.Stats.Windows == 0 || lane.Stats.Bins == 0 {
			t.Errorf("lane %d idle: %+v", lane.Shard, lane.Stats)
		}
		bins += lane.Stats.Bins
		accesses += lane.Stats.Accesses
		windows += lane.Stats.Windows
	}
	if bins != st.Bins || accesses != st.Accesses || windows != st.Windows {
		t.Errorf("aggregation mismatch: lanes (%d,%d,%d) vs totals (%d,%d,%d)",
			bins, accesses, windows, st.Bins, st.Accesses, st.Windows)
	}
	if st.Accesses == 0 || st.TrainTime == 0 {
		t.Errorf("empty totals: %+v", st)
	}
	// Deterministic bin/access accounting across runs (wall times vary).
	st2 := run()
	if st2.Bins != st.Bins || st2.Accesses != st.Accesses || st2.Windows != st.Windows {
		t.Errorf("second run diverged: (%d,%d,%d) vs (%d,%d,%d)",
			st2.Bins, st2.Accesses, st2.Windows, st.Bins, st.Accesses, st.Windows)
	}
}

// TestRunShardedSingleLaneMatchesPipeline checks the 1-shard sharded
// pipeline produces exactly the single Pipeline's accounting.
func TestRunShardedSingleLaneMatchesPipeline(t *testing.T) {
	const entries = 1 << 10
	stream, err := trace.Generate(trace.Config{Kind: trace.KindGaussian, N: entries, Count: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const S = 4
	const window = 600
	const depth = 2
	const seed = 21

	e := metaEngine(t, 1, entries, seed)
	shardedSt, err := RunSharded(e, ShardedPipelineConfig{
		Stream: stream, S: S, WindowAccesses: window, Depth: depth, Seed: seed, PrePlace: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ref := metaEngine(t, 1, entries, seed)
	p, err := NewPipeline(PipelineConfig{
		Stream: stream, S: S, WindowAccesses: window, Depth: depth, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PrePlaceFirstWindow(ref.Sub(0).Client, entries, nil); err != nil {
		t.Fatal(err)
	}
	refSt, err := p.Run(ref.Sub(0).Client, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shardedSt.Bins != refSt.Bins || shardedSt.Accesses != refSt.Accesses || shardedSt.Windows != refSt.Windows {
		t.Errorf("1-lane sharded (%d,%d,%d) != pipeline (%d,%d,%d)",
			shardedSt.Bins, shardedSt.Accesses, shardedSt.Windows,
			refSt.Bins, refSt.Accesses, refSt.Windows)
	}
}

// TestRunShardedValidation pins error paths.
func TestRunShardedValidation(t *testing.T) {
	if _, err := RunSharded(nil, ShardedPipelineConfig{Stream: []uint64{1}}); err == nil {
		t.Error("nil engine accepted")
	}
	e := metaEngine(t, 2, 64, 1)
	if _, err := RunSharded(e, ShardedPipelineConfig{}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := RunSharded(e, ShardedPipelineConfig{Stream: []uint64{1, 2}, S: 0, WindowAccesses: 4, Depth: 1}); err == nil {
		t.Error("S=0 accepted")
	}
}
