package batch

import (
	"context"
	"io"
	"testing"

	"repro/internal/oram"
	"repro/internal/shard"
	"repro/internal/trace"
)

func streamEngine(t *testing.T, shards int, entries uint64, seed int64) *shard.Engine {
	t.Helper()
	e, err := shard.New(shard.Config{
		Shards:  shards,
		Entries: entries,
		Seed:    seed,
		Build: func(s int, per uint64, sd int64) (shard.Sub, error) {
			g, err := oram.NewGeometry(oram.GeometryConfig{
				LeafBits: oram.LeafBitsFor(per), LeafZ: 4,
			})
			if err != nil {
				return shard.Sub{}, err
			}
			cs := oram.NewCountingStore(oram.NewMetaStore(g), nil)
			client, err := oram.NewClient(oram.ClientConfig{
				Store: cs, Rand: trace.NewRNG(sd), Evict: oram.PaperEvict,
				StashHits: true, Blocks: per,
			})
			if err != nil {
				return shard.Sub{}, err
			}
			return shard.Sub{Client: client, Store: cs}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

type sliceSrc struct{ rest []uint64 }

func (s *sliceSrc) Read(ctx context.Context, dst []uint64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(s.rest) == 0 {
		return 0, io.EOF
	}
	n := copy(dst, s.rest)
	s.rest = s.rest[n:]
	return n, nil
}

// TestStreamSequentialMatchesPipelined: both schedules must execute
// identical plans and produce identical counters — the invariant the
// pipeline experiment's speedup measurement rests on.
func TestStreamSequentialMatchesPipelined(t *testing.T) {
	const entries = 512
	stream := trace.PermutationEpochs(trace.NewRNG(4), entries, 3000)
	run := func(sequential bool) (TrainStats, shard.Stats) {
		e := streamEngine(t, 2, entries, 31)
		st, err := Train(context.Background(), e, &sliceSrc{rest: stream}, TrainConfig{
			S: 4, Window: 512, Depth: 2, PrePlace: true, Sequential: sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st, e.Stats()
	}
	seq, seqEng := run(true)
	pipe, pipeEng := run(false)
	if seq.Windows != pipe.Windows || seq.Accesses != pipe.Accesses || seq.Bins != pipe.Bins ||
		seq.ColdPathReads != pipe.ColdPathReads ||
		seq.LookaheadRemaps != pipe.LookaheadRemaps || seq.UniformRemaps != pipe.UniformRemaps {
		t.Errorf("schedules diverge:\nseq  %+v\npipe %+v", seq, pipe)
	}
	if seqEng.Access != pipeEng.Access {
		t.Errorf("engine counters diverge:\nseq  %+v\npipe %+v", seqEng.Access, pipeEng.Access)
	}
}

// TestStreamDeterministic: two identically-seeded runs are identical even
// though planning and execution overlap across goroutines.
func TestStreamDeterministic(t *testing.T) {
	const entries = 512
	stream := trace.PermutationEpochs(trace.NewRNG(9), entries, 2000)
	run := func() shard.Stats {
		e := streamEngine(t, 4, entries, 77)
		if _, err := Train(context.Background(), e, &sliceSrc{rest: stream}, TrainConfig{
			S: 4, Window: 256, Depth: 3, BatchBins: 2, PrePlace: true,
		}); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	a, b := run(), run()
	if a.Access != b.Access {
		t.Errorf("runs diverge: %+v vs %+v", a.Access, b.Access)
	}
}

// TestStreamValidation pins the config errors.
func TestStreamValidation(t *testing.T) {
	e := streamEngine(t, 1, 64, 1)
	ctx := context.Background()
	if _, err := Train(ctx, nil, &sliceSrc{}, TrainConfig{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Train(ctx, e, nil, TrainConfig{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Train(ctx, e, &sliceSrc{}, TrainConfig{Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := Train(ctx, e, &sliceSrc{}, TrainConfig{S: 8, Window: 4}); err == nil {
		t.Error("window < S accepted")
	}
	if _, err := Train(ctx, e, &sliceSrc{}, TrainConfig{BatchBins: -1}); err == nil {
		t.Error("negative BatchBins accepted")
	}
	if _, err := Train(ctx, e, &sliceSrc{}, TrainConfig{Payload: func(uint64) []byte { return nil }}); err == nil {
		t.Error("Payload without PrePlace accepted")
	}
	// Empty streams are a successful no-op, matching one-shot Preprocess.
	if st, err := Train(ctx, e, &sliceSrc{}, TrainConfig{}); err != nil || st.Windows != 0 {
		t.Errorf("empty stream: got %+v, %v; want 0-window success", st, err)
	}
}
