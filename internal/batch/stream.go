package batch

import (
	"context"
	"fmt"
	"time"

	"repro/internal/shard"
)

// stream.go is the streaming successor of the single-ORAM Pipeline: the
// §VIII-A two-stage pipeline rebuilt on the sharded engine. A
// shard.Planner scans an incremental index Source window by window and
// queues per-shard Plans; the trainer stage executes each window through a
// sharded Session, all shard lanes concurrent, while the planner works on
// the next window. Everything is context-aware: cancelling ctx stops the
// planner, drains the shard workers at the next bin boundary and returns
// ctx.Err().

// TrainConfig drives one streaming training run over a shard.Engine.
type TrainConfig struct {
	// S is the superblock size (default 4 when 0).
	S int
	// Window is the look-ahead horizon in global accesses per planning
	// window; 0 plans the whole stream as one window (the one-shot
	// shape, byte-identical to Preprocess + Session).
	Window int
	// Depth is the bounded plan queue (default 2 when 0 — double
	// buffering: plan window k+1 while executing window k).
	Depth int
	// BatchBins > 0 executes each window in batched server round trips
	// of that many bins (§IV-A per-training-batch fetch); 0 steps bin by
	// bin.
	BatchBins int
	// PrePlace bulk-loads the engine before the first window executes,
	// pre-placing every block of window 0 on its first bin's path (the
	// converged steady state of §IV-B). When false the engine must
	// already be loaded.
	PrePlace bool
	// Payload initialises rows during the PrePlace load (may be nil for
	// zero/simulated content). Requires PrePlace.
	Payload func(id uint64) []byte
	// NewVisit builds one trainer callback per shard lane (may be nil).
	NewVisit shard.NewVisit
	// Sequential disables the §VIII-A overlap: every window is planned
	// before the first one executes. This is the measurement baseline
	// for the pipeline experiment — identical work, no concurrency
	// between the stages — not a production mode.
	Sequential bool
	// StartWindow offsets the absolute index of the first planned window:
	// a recovery that rewound the source to the boundary of window B
	// resumes with StartWindow = B, keeping every window's absolute index
	// (and deterministic plan seed) identical to the unfaulted run.
	StartWindow int
	// CheckpointEvery > 0 invokes Checkpoint at every window boundary
	// whose absolute index is a multiple of it, immediately before that
	// window executes — the engine state observed by the hook is exactly
	// the post-(window-1) boundary. Requires Checkpoint.
	CheckpointEvery int
	// Checkpoint is the boundary hook: win is the absolute index of the
	// window about to execute, and sofar a snapshot of the stats
	// accumulated so far this run (sofar.Accesses is the stream offset of
	// the boundary relative to StartWindow's). An error aborts the run.
	Checkpoint func(win int, sofar TrainStats) error
	// SkipStartCheckpoint suppresses the hook at StartWindow itself: a
	// resumed run already holds that boundary's checkpoint, and taking it
	// again would break the one-save-per-boundary epoch parity between
	// faulted and unfaulted runs.
	SkipStartCheckpoint bool
}

func (c *TrainConfig) fill() error {
	if c.S == 0 {
		c.S = 4
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.S < 1 {
		return fmt.Errorf("batch: S must be >= 1, got %d", c.S)
	}
	if c.Window < 0 {
		return fmt.Errorf("batch: Window must be >= 0, got %d", c.Window)
	}
	if c.Window > 0 && c.Window < c.S {
		return fmt.Errorf("batch: Window %d must be >= S %d", c.Window, c.S)
	}
	if c.Depth < 1 {
		return fmt.Errorf("batch: Depth must be >= 1, got %d", c.Depth)
	}
	if c.BatchBins < 0 {
		return fmt.Errorf("batch: BatchBins must be >= 0, got %d", c.BatchBins)
	}
	if c.Payload != nil && !c.PrePlace {
		return fmt.Errorf("batch: Payload requires PrePlace")
	}
	if c.StartWindow < 0 {
		return fmt.Errorf("batch: StartWindow must be >= 0, got %d", c.StartWindow)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("batch: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	if (c.CheckpointEvery > 0) != (c.Checkpoint != nil) {
		return fmt.Errorf("batch: CheckpointEvery and Checkpoint must be set together")
	}
	return nil
}

// TrainStats summarises a streaming run.
type TrainStats struct {
	// Windows is the number of planned-and-executed windows.
	Windows int
	// Accesses is the number of stream indices covered by fully executed
	// windows (on a cancelled run the planner may have read further
	// ahead of this).
	Accesses uint64
	// Bins / ColdPathReads / LookaheadRemaps / UniformRemaps aggregate
	// the LAORAM session counters across windows and shard lanes.
	Bins            uint64
	ColdPathReads   uint64
	LookaheadRemaps uint64
	UniformRemaps   uint64
	// PlanTime is the total wall time the planner stage spent scanning
	// and binning (overlaps TrainTime unless Sequential).
	PlanTime time.Duration
	// TrainTime is the total wall time the trainer stage spent executing
	// windows (ORAM work, all shard lanes).
	TrainTime time.Duration
	// Stalled is how long the trainer waited on the plan queue — near
	// zero when preprocessing keeps ahead, the §VIII-A claim.
	Stalled time.Duration
	// TrainerStalls counts the window fetches that found the plan queue
	// empty: the queue-miss count behind Stalled (pipelined runs only).
	TrainerStalls int
	// PlannerStalled is how long the planning goroutine was blocked
	// handing windows to the full queue — backpressure on the cheap
	// stage, the healthy pipeline regime.
	PlannerStalled time.Duration
	// QueuePeak and QueueMean summarise the plan-queue depth observed at
	// each window fetch (bounded by Depth; pipelined runs only). A mean
	// near Depth means planning stays ahead; near zero means the trainer
	// is starved.
	QueuePeak int
	QueueMean float64
	// CheckpointTime is the total wall time spent inside the Checkpoint
	// boundary hook (zero when checkpointing is off).
	CheckpointTime time.Duration
	// Wall is the elapsed time of the whole run (excluding the PrePlace
	// bulk load).
	Wall time.Duration
	// FailedWindow is the absolute index of the window whose execution
	// error ended the run, or -1 when no window execution failed (success,
	// or a failure outside a session — planner, checkpoint hook, load).
	// A failed window's session counters are already folded into the
	// aggregates above; FailedAccesses and FailedLaneSession let a
	// per-shard recovery reconstruct exactly what that window contributed:
	// its stream-access span and each lane's session counters for just
	// that window.
	FailedWindow      int
	FailedAccesses    int
	FailedLaneSession []LaneSession
}

// LaneSession is one shard lane's session counters for a single window —
// the four LAORAM counters a TrainStats aggregates across lanes and
// windows.
type LaneSession struct {
	Bins, ColdPathReads, LookaheadRemaps, UniformRemaps uint64
}

// Train runs the streaming two-stage pipeline over e: plan windows from
// src on a bounded queue, execute each through a sharded Session. Returns
// ctx.Err() if the run was cancelled; the planner goroutine and all shard
// workers have drained by the time Train returns.
func Train(ctx context.Context, e *shard.Engine, src shard.Source, cfg TrainConfig) (TrainStats, error) {
	var st TrainStats
	st.FailedWindow = -1
	if e == nil {
		return st, fmt.Errorf("batch: nil engine")
	}
	if src == nil {
		return st, fmt.Errorf("batch: nil source")
	}
	if err := cfg.fill(); err != nil {
		return st, err
	}
	planner, err := e.NewPlanner(src, shard.PlannerConfig{
		S: cfg.S, Window: cfg.Window, Depth: cfg.Depth, StartWindow: cfg.StartWindow,
	})
	if err != nil {
		return st, err
	}
	// A child context stops the planner if the trainer bails out early,
	// so Train never leaks the planning goroutine.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := planner.Start(pctx)
	if err != nil {
		return st, err
	}

	wallStart := time.Now()
	loaded := false
	execute := func(w shard.PlannedWindow) error {
		if cfg.PrePlace && !loaded {
			// Pre-place window 0 (LoadForPlan leaves the rest of the
			// table uniform). The load is excluded from Wall by shifting
			// the clock origin: the one-shot flow loads before its
			// session too.
			loadStart := time.Now()
			if err := e.LoadForPlanContext(ctx, w.Plan, cfg.Payload); err != nil {
				return err
			}
			// Engine counters (and meters) describe the training run, not
			// the bulk load — the LoadForPlan → ResetStats convention of
			// the one-shot flow, applied internally.
			e.ResetStats()
			wallStart = wallStart.Add(time.Since(loadStart))
			loaded = true
		}
		if cfg.Checkpoint != nil && w.Index%cfg.CheckpointEvery == 0 &&
			!(cfg.SkipStartCheckpoint && w.Index == cfg.StartWindow) {
			// The boundary hook runs with the engine exactly at the
			// post-(w-1) state — window 0's boundary is the freshly
			// pre-placed (and stat-reset) table. Checkpoint time is real
			// run time, not excluded from Wall.
			ckStart := time.Now()
			if err := cfg.Checkpoint(w.Index, st); err != nil {
				return fmt.Errorf("batch: checkpoint at window %d: %w", w.Index, err)
			}
			st.CheckpointTime += time.Since(ckStart)
		}
		sess, err := e.NewSession(w.Plan)
		if err != nil {
			return err
		}
		runStart := time.Now()
		if cfg.BatchBins > 0 {
			err = sess.RunBatchedContext(ctx, cfg.BatchBins, cfg.NewVisit)
		} else {
			err = sess.RunContext(ctx, cfg.NewVisit)
		}
		st.TrainTime += time.Since(runStart)
		ss := sess.Stats()
		st.Bins += ss.Bins
		st.ColdPathReads += ss.ColdPathReads
		st.LookaheadRemaps += ss.LookaheadRemaps
		st.UniformRemaps += ss.UniformRemaps
		if err != nil {
			// The session counters above still record the partial
			// progress of the interrupted window; FailedWindow and the
			// per-lane breakdown let a per-shard recovery subtract the
			// failed lanes' partial contribution and replay only them.
			st.FailedWindow = w.Index
			st.FailedAccesses = w.Accesses
			st.FailedLaneSession = make([]LaneSession, e.Shards())
			for i := range st.FailedLaneSession {
				ls := sess.Lane(i).Stats()
				st.FailedLaneSession[i] = LaneSession{
					Bins: ls.Bins, ColdPathReads: ls.ColdPathReads,
					LookaheadRemaps: ls.LookaheadRemaps, UniformRemaps: ls.UniformRemaps,
				}
			}
			return fmt.Errorf("batch: window %d: %w", w.Index, err)
		}
		st.Windows++
		st.Accesses += uint64(w.Accesses)
		st.PlanTime += w.PlanTime
		return nil
	}

	fail := func(err error) (TrainStats, error) {
		st.Wall = time.Since(wallStart)
		// Wait for the planner to drain (cancel() above unblocks it),
		// then prefer the context error when the run was cancelled.
		cancel()
		for range ch {
		}
		st.PlannerStalled = planner.Stats().EnqueueStalled
		if ctx.Err() != nil {
			return st, ctx.Err()
		}
		return st, err
	}

	if cfg.Sequential {
		// Baseline: drain the planner completely, then execute.
		var windows []shard.PlannedWindow
		for w := range ch {
			windows = append(windows, w)
		}
		if err := planner.Err(); err != nil {
			return fail(err)
		}
		for _, w := range windows {
			if err := execute(w); err != nil {
				return fail(err)
			}
		}
	} else {
		depthSum := 0
		for {
			// Sample the queue depth the fetch finds: an empty queue
			// means this wait is a genuine pipeline stall, a full one
			// means planning is comfortably ahead.
			ready := len(ch)
			waitStart := time.Now()
			w, ok := <-ch
			st.Stalled += time.Since(waitStart)
			if !ok {
				break
			}
			if ready == 0 {
				st.TrainerStalls++
			}
			if ready > st.QueuePeak {
				st.QueuePeak = ready
			}
			depthSum += ready
			if err := execute(w); err != nil {
				return fail(err)
			}
		}
		if st.Windows > 0 {
			st.QueueMean = float64(depthSum) / float64(st.Windows)
		}
		if err := planner.Err(); err != nil {
			return fail(err)
		}
	}
	st.PlannerStalled = planner.Stats().EnqueueStalled
	st.Wall = time.Since(wallStart)
	if ctx.Err() != nil {
		return st, ctx.Err()
	}
	// A source that produces no indices is a successful no-op (zero
	// windows), matching the one-shot flow's behaviour on an empty
	// stream. Note PrePlace only triggers with at least one window.
	return st, nil
}
