package batch

import (
	"math/rand"
	"testing"

	"repro/internal/oram"
	"repro/internal/trace"
)

func newBase(t *testing.T, leafBits int, blocks uint64, seed int64) *oram.Client {
	t.Helper()
	g := oram.MustGeometry(oram.GeometryConfig{LeafBits: leafBits, LeafZ: 4})
	c, err := oram.NewClient(oram.ClientConfig{
		Store: oram.NewCountingStore(oram.NewMetaStore(g), nil),
		Rand:  rand.New(rand.NewSource(seed)), Evict: oram.PaperEvict,
		StashHits: true, Blocks: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPipelineValidation(t *testing.T) {
	bad := []PipelineConfig{
		{Stream: nil, S: 4, WindowAccesses: 16, Depth: 1},
		{Stream: []uint64{1}, S: 0, WindowAccesses: 16, Depth: 1},
		{Stream: []uint64{1}, S: 4, WindowAccesses: 2, Depth: 1},
		{Stream: []uint64{1}, S: 4, WindowAccesses: 16, Depth: 0},
	}
	for i, cfg := range bad {
		if _, err := NewPipeline(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestPipelineRunsWholeStream(t *testing.T) {
	const blocks = 512
	stream := trace.PermutationEpochs(trace.NewRNG(1), blocks, 2048)
	p, err := NewPipeline(PipelineConfig{
		Stream: stream, S: 4, WindowAccesses: 512, Depth: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Windows() != 4 {
		t.Errorf("Windows = %d, want 4", p.Windows())
	}
	base := newBase(t, 9, blocks, 5)
	if err := p.PrePlaceFirstWindow(base, blocks, nil); err != nil {
		t.Fatal(err)
	}
	visited := 0
	st, err := p.Run(base, func(id oram.BlockID, payload []byte) []byte {
		visited++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 4 {
		t.Errorf("stats Windows = %d", st.Windows)
	}
	if st.Accesses != uint64(len(stream)) {
		t.Errorf("Accesses = %d, want %d", st.Accesses, len(stream))
	}
	if visited != len(stream) {
		t.Errorf("visited %d rows, want %d", visited, len(stream))
	}
	if st.Bins == 0 || st.TrainTime == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.PreprocessPerAccess <= 0 || st.TrainPerAccess <= 0 {
		t.Errorf("per-access averages missing: %+v", st)
	}
}

// TestPipelineInjectedRNG pins the injected-RNG contract: the pipeline
// draws every window's plan paths from the supplied constructor (one call
// per window, window 0 shared with PrePlaceFirstWindow), and the nil
// default is byte-identical to trace.NewRNG(Seed + window).
func TestPipelineInjectedRNG(t *testing.T) {
	const blocks = 512
	stream := trace.PermutationEpochs(trace.NewRNG(9), blocks, 2048)
	run := func(rng func(window int) *rand.Rand) uint64 {
		p, err := NewPipeline(PipelineConfig{
			Stream: stream, S: 4, WindowAccesses: 512, Depth: 2, Seed: 21, RNG: rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := newBase(t, 9, blocks, 5)
		if err := p.PrePlaceFirstWindow(base, blocks, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(base, nil); err != nil {
			t.Fatal(err)
		}
		return base.Stats().PathReads
	}

	var calls []int
	instrumented := func(window int) *rand.Rand {
		calls = append(calls, window)
		return trace.NewRNG(21 + int64(window))
	}
	injected := run(instrumented)
	deflt := run(nil)
	if injected != deflt {
		t.Errorf("injected trace.NewRNG(Seed+window) diverged from the default: %d vs %d path reads", injected, deflt)
	}
	// PrePlaceFirstWindow re-derives window 0's RNG, then Run derives one
	// per window: 0, 0, 1, 2, 3 for four windows.
	want := []int{0, 0, 1, 2, 3}
	if len(calls) != len(want) {
		t.Fatalf("RNG constructor called for windows %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("RNG constructor called for windows %v, want %v", calls, want)
		}
	}
}

// TestPreprocessingOffCriticalPath reproduces §VIII-A: per-access
// preprocessing cost is far below per-access ORAM (training) cost, so the
// pipeline's trainer is the bottleneck.
func TestPreprocessingOffCriticalPath(t *testing.T) {
	const blocks = 1 << 10
	stream := trace.PermutationEpochs(trace.NewRNG(2), blocks, 8192)
	p, err := NewPipeline(PipelineConfig{
		Stream: stream, S: 4, WindowAccesses: 2048, Depth: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := newBase(t, 10, blocks, 6)
	if err := p.PrePlaceFirstWindow(base, blocks, nil); err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PreprocessTime*2 >= st.TrainTime {
		t.Errorf("preprocessing (%v) not clearly cheaper than training (%v)",
			st.PreprocessTime, st.TrainTime)
	}
	t.Logf("preprocess/access=%v train/access=%v stall=%v",
		st.PreprocessPerAccess, st.TrainPerAccess, st.TrainerStalled)
}

// TestWindowBoundariesCauseColdReads: shrinking the look-ahead window below
// the reuse distance reintroduces cold path reads (the abl-window effect);
// a full-stream window eliminates them after pre-placement.
func TestWindowBoundariesCauseColdReads(t *testing.T) {
	const blocks = 512
	stream := trace.PermutationEpochs(trace.NewRNG(3), blocks, 2048)
	run := func(window int) uint64 {
		p, err := NewPipeline(PipelineConfig{
			Stream: stream, S: 4, WindowAccesses: window, Depth: 2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := newBase(t, 9, blocks, 8)
		if err := p.PrePlaceFirstWindow(base, blocks, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(base, nil); err != nil {
			t.Fatal(err)
		}
		// Cold traffic shows up as extra path reads beyond one per bin.
		st := base.Stats()
		bins := (uint64(len(stream)) + 3) / 4
		if st.PathReads < bins-uint64(blocks/4) { // tolerance for stash hits
			t.Fatalf("implausible path reads %d for %d bins", st.PathReads, bins)
		}
		return st.PathReads
	}
	full := run(len(stream))
	tiny := run(64)
	if tiny <= full {
		t.Errorf("tiny window reads (%d) should exceed full-window reads (%d)", tiny, full)
	}
}
