package batch

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/oram"
	"repro/internal/shard"
)

// ShardedPipelineConfig drives one two-stage pipeline per shard lane.
type ShardedPipelineConfig struct {
	// Stream is the full upcoming access stream in global block IDs; it
	// is partitioned across shards before the lanes start.
	Stream []uint64
	// S is the superblock size.
	S int
	// WindowAccesses is the per-lane look-ahead horizon (accesses of the
	// lane's local stream per preprocessed window).
	WindowAccesses int
	// Depth is how many preprocessed windows may queue ahead of each
	// lane's trainer.
	Depth int
	// Seed derives per-lane, per-window plan RNGs: lane i uses
	// shard.SeedFor(Seed, i).
	Seed int64
	// PrePlace starts each lane in the converged steady state of its
	// first window (Pipeline.PrePlaceFirstWindow per shard). When false,
	// the engine must have been bulk-loaded already (Engine.Load).
	PrePlace bool
	// NewVisit, if non-nil, builds one trainer callback per lane
	// (global-ID space); lanes run concurrently, so state must stay
	// lane-local.
	NewVisit shard.NewVisit
}

// LaneStats is one shard lane's pipeline outcome.
type LaneStats struct {
	Shard int
	Stats Stats
}

// ShardedStats aggregates the per-lane pipelines. Stage times are summed
// across lanes (total CPU spent in each stage); WallTime is the elapsed
// time of the whole fan-out — with balanced lanes it approaches the
// single-lane time divided by the shard count on parallel hardware.
type ShardedStats struct {
	Lanes          []LaneStats
	Windows        int
	Bins           uint64
	Accesses       uint64
	PreprocessTime time.Duration
	TrainTime      time.Duration
	TrainerStalled time.Duration
	WallTime       time.Duration
}

// RunSharded partitions cfg.Stream across the engine's shards and runs one
// two-stage preprocessor/trainer pipeline (§VIII-A) per shard lane, all
// lanes concurrent. Lanes whose slice of the stream is empty are skipped.
func RunSharded(e *shard.Engine, cfg ShardedPipelineConfig) (ShardedStats, error) {
	var out ShardedStats
	if e == nil {
		return out, fmt.Errorf("batch: nil engine")
	}
	if len(cfg.Stream) == 0 {
		return out, fmt.Errorf("batch: empty stream")
	}
	n := e.Shards()
	locals := shard.SplitStream(cfg.Stream, n)
	lanes := make([]Stats, n)
	errs := make([]error, n)
	active := make([]bool, n)

	wallStart := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if len(locals[i]) == 0 {
			continue
		}
		active[i] = true
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runLane(e, cfg, i, locals[i], &lanes[i])
		}(i)
	}
	wg.Wait()
	out.WallTime = time.Since(wallStart)

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return out, fmt.Errorf("batch: shard %d: %w", i, errs[i])
		}
		if !active[i] {
			continue
		}
		out.Lanes = append(out.Lanes, LaneStats{Shard: i, Stats: lanes[i]})
		out.Windows += lanes[i].Windows
		out.Bins += lanes[i].Bins
		out.Accesses += lanes[i].Accesses
		out.PreprocessTime += lanes[i].PreprocessTime
		out.TrainTime += lanes[i].TrainTime
		out.TrainerStalled += lanes[i].TrainerStalled
	}
	return out, nil
}

// runLane executes shard i's pipeline over its local stream.
func runLane(e *shard.Engine, cfg ShardedPipelineConfig, i int, local []uint64, dst *Stats) error {
	window := cfg.WindowAccesses
	if window > len(local) {
		window = len(local)
	}
	if window < cfg.S {
		window = cfg.S
	}
	p, err := NewPipeline(PipelineConfig{
		Stream:         local,
		S:              cfg.S,
		WindowAccesses: window,
		Depth:          cfg.Depth,
		Seed:           shard.SeedFor(cfg.Seed, i),
	})
	if err != nil {
		return err
	}
	client := e.Sub(i).Client
	if cfg.PrePlace {
		if err := p.PrePlaceFirstWindow(client, shard.LoadCount(e.Entries(), i, e.Shards()), nil); err != nil {
			return err
		}
	}
	var visit core.Visit
	if cfg.NewVisit != nil {
		if v := cfg.NewVisit(i); v != nil {
			visit = func(lid oram.BlockID, payload []byte) []byte {
				return v(shard.GlobalID(uint64(lid), i, e.Shards()), payload)
			}
		}
	}
	st, err := p.Run(client, visit)
	if err != nil {
		return err
	}
	*dst = st
	return nil
}
