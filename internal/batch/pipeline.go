// Package batch implements the paper's two-stage training pipeline
// (§VIII-A): "Preprocessing and accessing data are two pipeline stages in
// the 2-stage LAORAM pipeline. Once the preprocessing for the first several
// batches is complete, GPU can generate the LAORAM accesses and start the
// training process. The preprocessing can then run ahead of the GPU
// training process."
//
// The preprocessor goroutine scans the upcoming sample stream window by
// window, builds superblock plans (internal/superblock) and hands them over
// a channel; the trainer goroutine executes each plan through a LAORAM
// client. Wall-clock time spent in each stage is recorded so the harness
// can reproduce the §VIII-A observation that preprocessing is off the
// critical path.
package batch

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/oram"
	"repro/internal/superblock"
	"repro/internal/trace"
)

// PipelineConfig drives a pipelined training run.
type PipelineConfig struct {
	// Stream is the full upcoming access stream (embedding indices in
	// training order).
	Stream []uint64
	// S is the superblock size.
	S int
	// WindowAccesses is the look-ahead horizon: how many upcoming
	// accesses the preprocessor scans per window. Blocks whose next
	// access falls outside the current window are remapped uniformly, so
	// small windows degrade toward PathORAM — the abl-window ablation.
	WindowAccesses int
	// Depth is how many preprocessed windows may queue ahead of the
	// trainer (channel buffer).
	Depth int
	// Seed derives the per-window plan RNGs.
	Seed int64
	// RNG builds the seeded random source for one window's plan. Nil
	// selects the shared deterministic default, trace.NewRNG(Seed +
	// window) — the injected-RNG convention every other randomized
	// component follows, so windowed planning is reproducible under a
	// single seed and tests can substitute instrumented sources.
	RNG func(window int) *rand.Rand
}

// rng returns the plan RNG for one window, honouring the injected
// constructor.
func (c *PipelineConfig) rng(window int) *rand.Rand {
	if c.RNG != nil {
		return c.RNG(window)
	}
	return trace.NewRNG(c.Seed + int64(window))
}

func (c *PipelineConfig) validate() error {
	if len(c.Stream) == 0 {
		return fmt.Errorf("batch: empty stream")
	}
	if c.S < 1 {
		return fmt.Errorf("batch: S must be >= 1, got %d", c.S)
	}
	if c.WindowAccesses < c.S {
		return fmt.Errorf("batch: WindowAccesses %d must be >= S %d", c.WindowAccesses, c.S)
	}
	if c.Depth < 1 {
		return fmt.Errorf("batch: Depth must be >= 1, got %d", c.Depth)
	}
	return nil
}

// Stats summarises a pipeline run.
type Stats struct {
	// Windows is the number of preprocessed windows.
	Windows int
	// Bins is the number of superblock bins executed.
	Bins uint64
	// Accesses is the number of logical row accesses trained.
	Accesses uint64
	// PreprocessTime is the total wall time the preprocessor stage spent
	// scanning (runs concurrently with training).
	PreprocessTime time.Duration
	// TrainTime is the total wall time the trainer stage spent executing
	// plans (ORAM work).
	TrainTime time.Duration
	// TrainerStalled is how long the trainer waited for plans — near
	// zero when preprocessing keeps ahead, the §VIII-A claim.
	TrainerStalled time.Duration
	// PreprocessPerAccess and TrainPerAccess are the per-access averages.
	PreprocessPerAccess time.Duration
	TrainPerAccess      time.Duration
}

type planMsg struct {
	plan *superblock.Plan
	err  error
}

// Pipeline is a reusable two-stage preprocessor/trainer pipeline.
type Pipeline struct {
	cfg PipelineConfig
}

// NewPipeline validates cfg.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

// Windows returns the number of windows the stream splits into.
func (p *Pipeline) Windows() int {
	return (len(p.cfg.Stream) + p.cfg.WindowAccesses - 1) / p.cfg.WindowAccesses
}

// PrePlaceFirstWindow loads the ORAM so blocks of the first window sit on
// their first bin's path (steady-state start); all other blocks are placed
// uniformly. payload may be nil for metadata-only stores.
func (p *Pipeline) PrePlaceFirstWindow(base *oram.Client, n uint64, payload func(oram.BlockID) []byte) error {
	end := p.cfg.WindowAccesses
	if end > len(p.cfg.Stream) {
		end = len(p.cfg.Stream)
	}
	plan, err := superblock.NewPlan(p.cfg.Stream[:end], superblock.PlanConfig{
		S:      p.cfg.S,
		Leaves: base.Geometry().Leaves(),
		Rand:   p.cfg.rng(0),
	})
	if err != nil {
		return err
	}
	return base.Load(n, func(id oram.BlockID) oram.Leaf {
		if l := plan.FirstLeaf(id); l != oram.NoLeaf {
			return l
		}
		return base.RandomLeaf()
	}, payload)
}

// Run executes the pipeline over base. visit is invoked for every row while
// resident (may be nil). Run blocks until the stream is fully trained.
//
// Note the window-0 plan is rebuilt with the same seed used by
// PrePlaceFirstWindow, so pre-placement and execution agree.
func (p *Pipeline) Run(base *oram.Client, visit core.Visit) (Stats, error) {
	var st Stats
	ch := make(chan planMsg, p.cfg.Depth)

	// Stage 1: preprocessor (the paper's trusted preprocessor thread).
	go func() {
		defer close(ch)
		win := 0
		for off := 0; off < len(p.cfg.Stream); off += p.cfg.WindowAccesses {
			end := off + p.cfg.WindowAccesses
			if end > len(p.cfg.Stream) {
				end = len(p.cfg.Stream)
			}
			start := time.Now()
			plan, err := superblock.NewPlan(p.cfg.Stream[off:end], superblock.PlanConfig{
				S:      p.cfg.S,
				Leaves: base.Geometry().Leaves(),
				Rand:   p.cfg.rng(win),
			})
			st.PreprocessTime += time.Since(start)
			ch <- planMsg{plan: plan, err: err}
			if err != nil {
				return
			}
			win++
		}
	}()

	// Stage 2: trainer (the paper's trainer GPU).
	for {
		waitStart := time.Now()
		msg, ok := <-ch
		st.TrainerStalled += time.Since(waitStart)
		if !ok {
			break
		}
		if msg.err != nil {
			return st, fmt.Errorf("batch: preprocessor: %w", msg.err)
		}
		la, err := core.New(core.Config{Base: base, Plan: msg.plan})
		if err != nil {
			return st, err
		}
		before := base.Stats() // base counters persist across windows
		start := time.Now()
		if err := la.Run(visit); err != nil {
			return st, fmt.Errorf("batch: window %d: %w", st.Windows, err)
		}
		st.TrainTime += time.Since(start)
		st.Bins += la.Stats().Bins
		st.Accesses += base.Stats().Sub(before).Accesses
		st.Windows++
	}
	if st.Accesses > 0 {
		st.PreprocessPerAccess = st.PreprocessTime / time.Duration(st.Accesses)
		st.TrainPerAccess = st.TrainTime / time.Duration(st.Accesses)
	}
	return st, nil
}
