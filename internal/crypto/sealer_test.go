package crypto

import (
	"bytes"
	"testing"
)

func testKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

func TestSealerRoundTrip(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte{0x42}, 128)
	sealed, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != s.SealedSize(len(plain)) {
		t.Errorf("sealed size %d, want %d", len(sealed), s.SealedSize(len(plain)))
	}
	got, err := s.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("round trip mismatch")
	}
}

func TestSealerHidesPlaintext(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("categorical-user-data-0123456789")
	sealed, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, plain[:8]) {
		t.Error("plaintext prefix visible in ciphertext")
	}
}

func TestSealerFreshIVs(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte{7}, 64)
	a, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("sealing the same plaintext twice produced identical ciphertext")
	}
}

func TestSealerTamperDetection(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := s.Seal(bytes.Repeat([]byte{1}, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, ivSize + 1, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[pos] ^= 0x80
		if _, err := s.Open(tampered); err == nil {
			t.Errorf("tampering at byte %d undetected", pos)
		}
	}
	if _, err := s.Open(sealed[:Overhead-1]); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestSealerWrongKeyFails(t *testing.T) {
	s1, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	k2 := testKey()
	k2[0] ^= 1
	s2, err := NewSealer(k2)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := s1.Seal(bytes.Repeat([]byte{9}, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open(sealed); err == nil {
		t.Error("foreign key opened the blob")
	}
}

func TestSealerKeyValidation(t *testing.T) {
	if _, err := NewSealer(make([]byte, 16)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewSealer(nil); err == nil {
		t.Error("nil key accepted")
	}
}

func TestNewRandomSealer(t *testing.T) {
	s, err := NewRandomSealer()
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("abcd")
	sealed, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("random sealer round trip failed")
	}
}

func TestSealerEmptyPayload(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := s.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty payload round trip = %v", got)
	}
}
