package crypto

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the derived crypto fan-out width used when a caller
// passes 0 "workers": one per CPU, capped at 8 — past that the sealed hot
// path is memory-bound, not AES-bound. Client (laoram.Options.CryptoWorkers)
// and server (laoramserve -cryptoworkers) share this policy.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pool is a bounded worker pool for fanning embarrassingly parallel
// seal/open work across goroutines: the buckets of a path, a batched
// bucket union or a superblock fetch are independent AEAD records (Path
// ORAM and PrORAM treat per-bucket encryption as independent work), so the
// only coordination parallel crypto needs is counter reservation — which
// Sealer.ReserveSeals provides deterministically.
//
// The pool owns Workers()-1 persistent goroutines; Run executes chunk 0 on
// the calling goroutine, so a 1-worker pool degenerates to a plain serial
// loop with no goroutines, no channel sends and no allocation — the
// byte-identical CryptoWorkers=1 path. Several owners (shard stores) may
// call Run concurrently; chunks from concurrent Runs interleave on the
// shared workers. Tasks must never call Run themselves (chunk 0 always
// runs inline, so progress is guaranteed even with every worker busy, but
// a task blocking on its own pool would deadlock).
type Pool struct {
	workers int
	tasks   chan func()
	done    sync.WaitGroup
}

// NewPool starts a pool with the given fan-out width (clamped to >= 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func(), 2*workers)
		p.done.Add(workers - 1)
		for i := 1; i < workers; i++ {
			go func() {
				defer p.done.Done()
				for task := range p.tasks {
					task()
				}
			}()
		}
	}
	return p
}

// Workers returns the fan-out width (>= 1).
func (p *Pool) Workers() int { return p.workers }

// Close stops the worker goroutines. Run must not be called after — or
// concurrently with — Close. A nil pool and a 1-worker pool close as
// no-ops.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	close(p.tasks)
	p.done.Wait()
	p.tasks = nil
}

// Run partitions [0, n) into at most Workers() contiguous chunks and calls
// fn(chunk, lo, hi) once per chunk, chunk 0 on the calling goroutine and
// the rest on the pool workers. It returns after every chunk has finished,
// with the lowest-chunk error. Chunk indices are dense in [0, chunks), so
// callers can hand chunk c a dedicated Sealer clone; because a chunk's
// bounds depend only on (n, Workers()), the work assignment — and with
// reserved counter sequences, the output bytes — are independent of
// scheduling.
func (p *Pool) Run(n int, fn func(chunk, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	per := (n + chunks - 1) / chunks
	if chunks == 1 {
		return fn(0, 0, n)
	}
	errs := make([]error, chunks)
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		c, lo, hi := c, lo, hi
		p.tasks <- func() {
			defer wg.Done()
			errs[c] = fn(c, lo, hi)
		}
	}
	errs[0] = fn(0, 0, per)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
