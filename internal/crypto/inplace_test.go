package crypto

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestCTRMatchesStdlib pins the hand-rolled allocation-free CTR against
// crypto/cipher's reference implementation for a spread of lengths
// (including non-block-multiples and >1 counter-block carries).
func TestCTRMatchesStdlib(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	blk, err := aes.NewCipher(testKey()[:16])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 128, 4096} {
		src := make([]byte, n)
		rng.Read(src)
		iv := make([]byte, aes.BlockSize)
		rng.Read(iv)
		// Force counter carries: an IV ending in 0xFF.. exercises the
		// multi-byte increment.
		if n == 128 {
			for i := 8; i < aes.BlockSize; i++ {
				iv[i] = 0xFF
			}
		}
		got := make([]byte, n)
		s.xorKeyStream(got, src, iv)
		want := make([]byte, n)
		cipher.NewCTR(blk, iv).XORKeyStream(want, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d: manual CTR diverges from cipher.NewCTR", n)
		}
	}
}

// TestSealToOpenToRoundTrip covers the in-place variants, including reuse
// of the same dst buffers across calls (the hot-path pattern).
func TestSealToOpenToRoundTrip(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	sealed := make([]byte, s.SealedSize(128))
	opened := make([]byte, 128)
	for trial := 0; trial < 32; trial++ {
		plain := bytes.Repeat([]byte{byte(trial)}, 128)
		if err := s.SealTo(sealed, plain); err != nil {
			t.Fatal(err)
		}
		if err := s.OpenTo(opened, sealed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(opened, plain) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
	// Cross-API: SealTo output opens via Open, Seal output via OpenTo.
	plain := []byte("cross-api-payload-0123456789abcd")
	if err := s.SealTo(sealed[:s.SealedSize(len(plain))], plain); err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(sealed[:s.SealedSize(len(plain))])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("SealTo → Open mismatch")
	}
	blob, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenTo(opened[:len(plain)], blob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened[:len(plain)], plain) {
		t.Fatal("Seal → OpenTo mismatch")
	}
}

func TestSealToSizeValidation(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SealTo(make([]byte, 10), make([]byte, 16)); err == nil {
		t.Error("undersized SealTo dst accepted")
	}
	if err := s.OpenTo(make([]byte, 3), make([]byte, Overhead+16)); err == nil {
		t.Error("wrong-size OpenTo dst accepted")
	}
	if err := s.OpenTo(make([]byte, 0), make([]byte, Overhead-1)); err == nil {
		t.Error("truncated blob accepted by OpenTo")
	}
}

// TestSealerIVsUnique: counter-derived IVs never repeat within a Sealer.
func TestSealerIVsUnique(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, 32)
	seen := make(map[string]bool)
	buf := make([]byte, s.SealedSize(len(plain)))
	for i := 0; i < 1000; i++ {
		if err := s.SealTo(buf, plain); err != nil {
			t.Fatal(err)
		}
		iv := string(buf[:ivSize])
		if seen[iv] {
			t.Fatalf("IV repeated at seal %d", i)
		}
		seen[iv] = true
	}
}

// TestNoKeystreamReuse: no two seals under one Sealer — or any of its
// clones, sequential or concurrent — may share a CTR counter block: a
// shared block would be a two-time pad (XOR of two ciphertexts reveals the
// XOR of the plaintexts). Sealing all-zero payloads exposes the keystream
// directly in the ciphertext, so any 16-byte keystream block appearing
// twice across seals is reuse; the IV (prefix ‖ counter sequence) must be
// unique per seal for the same reason.
func TestNoKeystreamReuse(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[16]byte]int)
	ingest := func(t *testing.T, sealed []byte, tag int) {
		t.Helper()
		ct := sealed[ivSize : len(sealed)-tagSize]
		for off := 0; off+16 <= len(ct); off += 16 {
			var blk [16]byte
			copy(blk[:], ct[off:])
			if prev, dup := seen[blk]; dup {
				t.Fatalf("keystream block reused (seal %d, offset %d, first seen at seal %d)", tag, off, prev)
			}
			seen[blk] = tag
		}
	}
	for _, size := range []int{128, 130, 16, 20, 1, 4096, 128} {
		sealed, err := s.Seal(make([]byte, size))
		if err != nil {
			t.Fatal(err)
		}
		ingest(t, sealed, size)
	}

	// Clones share the counter space: N clones sealing concurrently must
	// reserve disjoint counter ranges, so pooling every ciphertext block
	// (and IV) across all of them must still show zero duplicates.
	const clones = 8
	const sealsPer = 64
	outs := make([][][]byte, clones)
	var wg sync.WaitGroup
	for c := 0; c < clones; c++ {
		cl := s.Clone()
		wg.Add(1)
		go func(c int, cl *Sealer) {
			defer wg.Done()
			sizes := []int{128, 33, 4096, 16, 1}
			for k := 0; k < sealsPer; k++ {
				sealed, err := cl.Seal(make([]byte, sizes[k%len(sizes)]))
				if err != nil {
					return // surfaces as a short output below
				}
				outs[c] = append(outs[c], sealed)
			}
		}(c, cl)
	}
	wg.Wait()
	ivs := make(map[[16]byte]bool)
	for c := range outs {
		if len(outs[c]) != sealsPer {
			t.Fatalf("clone %d sealed %d of %d payloads", c, len(outs[c]), sealsPer)
		}
		for k, sealed := range outs[c] {
			var iv [16]byte
			copy(iv[:], sealed[:ivSize])
			if ivs[iv] {
				t.Fatalf("clone %d seal %d reused an IV+counter pair", c, k)
			}
			ivs[iv] = true
			ingest(t, sealed, 1000+c*sealsPer+k)
		}
	}
}

// TestQuickCloneKeystreamDisjoint is the testing/quick property behind the
// clone guarantee: for any clone count, per-clone seal count and payload
// size (bounded), concurrent sealing from N clones never reuses an
// IV+counter pair and never emits the same keystream block twice.
func TestQuickCloneKeystreamDisjoint(t *testing.T) {
	f := func(clones, seals uint8, size uint16) bool {
		n := int(clones)%6 + 1
		per := int(seals)%24 + 1
		sz := int(size)%300 + 1
		s, err := NewSealer(testKey())
		if err != nil {
			return false
		}
		outs := make([][][]byte, n)
		var wg sync.WaitGroup
		for c := 0; c < n; c++ {
			cl := s.Clone()
			wg.Add(1)
			go func(c int, cl *Sealer) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					sealed, err := cl.Seal(make([]byte, sz))
					if err != nil {
						return
					}
					outs[c] = append(outs[c], sealed)
				}
			}(c, cl)
		}
		wg.Wait()
		ivs := make(map[[16]byte]bool)
		blocks := make(map[[16]byte]bool)
		for c := range outs {
			if len(outs[c]) != per {
				return false
			}
			for _, sealed := range outs[c] {
				var iv [16]byte
				copy(iv[:], sealed[:ivSize])
				if ivs[iv] {
					return false
				}
				ivs[iv] = true
				ct := sealed[ivSize : len(sealed)-tagSize]
				for off := 0; off+16 <= len(ct); off += 16 {
					var blk [16]byte
					copy(blk[:], ct[off:])
					if blocks[blk] {
						return false
					}
					blocks[blk] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSealOpenToAllocFree gates the in-place hot path at zero allocations
// in steady state (the warm-up call inside AllocsPerRun absorbs the HMAC's
// one-time state marshal).
func TestSealOpenToAllocFree(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte{0x42}, 128)
	sealed := make([]byte, s.SealedSize(len(plain)))
	opened := make([]byte, len(plain))
	if err := s.SealTo(sealed, plain); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.SealTo(sealed, plain); err != nil {
			t.Fatal(err)
		}
		if err := s.OpenTo(opened, sealed); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("SealTo+OpenTo allocates %.1f objects/op, want 0", allocs)
	}
}
