package crypto

import (
	"bytes"
	"testing"
)

// BenchmarkSealOpen measures one seal + open round trip of a 128 B payload
// (a DLRM row) through the allocating API.
func BenchmarkSealOpen(b *testing.B) {
	s, err := NewSealer(testKey())
	if err != nil {
		b.Fatal(err)
	}
	plain := bytes.Repeat([]byte{0x42}, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := s.Seal(plain)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
