package crypto

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestPoolCoversRange: every index in [0, n) is handled exactly once, for
// widths below, at and above n, and chunk indices stay dense and distinct.
func TestPoolCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 8, 9, 100} {
			hits := make([]atomic.Int32, n)
			var chunks sync.Map
			err := p.Run(n, func(chunk, lo, hi int) error {
				if _, dup := chunks.LoadOrStore(chunk, true); dup {
					t.Errorf("workers=%d n=%d: chunk %d ran twice", workers, n, chunk)
				}
				if chunk < 0 || chunk >= workers {
					t.Errorf("workers=%d n=%d: chunk %d out of range", workers, n, chunk)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d handled %d times", workers, n, i, got)
				}
			}
			chunks.Range(func(k, _ any) bool { chunks.Delete(k); return true })
		}
		p.Close()
	}
}

// TestPoolReturnsLowestChunkError: the error of the lowest-index failing
// chunk wins, matching the serial loop's first-error semantics.
func TestPoolReturnsLowestChunkError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	errA := errors.New("chunk 1 failed")
	errB := errors.New("chunk 3 failed")
	err := p.Run(8, func(chunk, lo, hi int) error {
		switch chunk {
		case 1:
			return errA
		case 3:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want lowest-chunk error %v", err, errA)
	}
}

// TestPoolConcurrentOwners: several goroutines (the shard model) may Run
// on one shared pool concurrently; each Run must still cover its own range
// exactly once.
func TestPoolConcurrentOwners(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const owners = 6
	const n = 64
	var wg sync.WaitGroup
	fail := make([]bool, owners)
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			hits := make([]atomic.Int32, n)
			if err := p.Run(n, func(chunk, lo, hi int) error {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
				return nil
			}); err != nil {
				fail[o] = true
				return
			}
			for i := range hits {
				if hits[i].Load() != 1 {
					fail[o] = true
				}
			}
		}(o)
	}
	wg.Wait()
	for o, f := range fail {
		if f {
			t.Errorf("owner %d: range not covered exactly once", o)
		}
	}
}

// TestQuickPoolPartition: the chunk layout is a partition of [0, n) into
// contiguous, ordered, non-overlapping spans for arbitrary (workers, n).
func TestQuickPoolPartition(t *testing.T) {
	f := func(workers, n uint8) bool {
		w := int(workers)%8 + 1
		m := int(n) % 200
		p := NewPool(w)
		defer p.Close()
		type span struct{ lo, hi int }
		var mu sync.Mutex
		spans := map[int]span{}
		if err := p.Run(m, func(chunk, lo, hi int) error {
			mu.Lock()
			spans[chunk] = span{lo, hi}
			mu.Unlock()
			return nil
		}); err != nil {
			return false
		}
		covered := 0
		for c := 0; c < len(spans); c++ {
			s, ok := spans[c]
			if !ok || s.lo != covered || s.hi <= s.lo || s.hi > m {
				return false
			}
			covered = s.hi
		}
		return covered == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
