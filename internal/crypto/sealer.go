// Package crypto implements the block-sealing layer of the threat model
// (§III): "the content of the memory itself is considered encrypted and
// hence secure". The client seals every block before it crosses the
// insecure channel to server storage and opens it on return, so the
// adversary observes only addresses — never plaintext.
//
// Construction: AES-128-CTR with a fresh random IV per seal, authenticated
// with HMAC-SHA-256 truncated to 16 bytes (encrypt-then-MAC). Stdlib only.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
)

const (
	ivSize  = aes.BlockSize // 16
	tagSize = 16            // truncated HMAC-SHA-256
	// Overhead is the sealed-size expansion per block.
	Overhead = ivSize + tagSize
)

// Sealer encrypts and authenticates fixed-size block payloads. It
// implements the oram.Sealer interface. A Sealer is safe for sequential
// use by a single client goroutine (matching the ORAM client's model).
type Sealer struct {
	block   cipher.Block
	macKey  [32]byte
	counter uint64 // mixed into IVs to guarantee uniqueness
}

// NewSealer derives a sealer from a 32-byte master key: the first 16 bytes
// key AES, the full key is stretched into the MAC key.
func NewSealer(master []byte) (*Sealer, error) {
	if len(master) != 32 {
		return nil, fmt.Errorf("crypto: master key must be 32 bytes, got %d", len(master))
	}
	blk, err := aes.NewCipher(master[:16])
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	s := &Sealer{block: blk}
	s.macKey = sha256.Sum256(append([]byte("laoram-mac-v1:"), master...))
	return s, nil
}

// NewRandomSealer generates a fresh master key from crypto/rand.
func NewRandomSealer() (*Sealer, error) {
	key := make([]byte, 32)
	if _, err := cryptorand.Read(key); err != nil {
		return nil, fmt.Errorf("crypto: generating key: %w", err)
	}
	return NewSealer(key)
}

// SealedSize implements oram.Sealer.
func (s *Sealer) SealedSize(plain int) int { return plain + Overhead }

// Seal encrypts plain into a fresh slice laid out as [IV | ciphertext | tag].
func (s *Sealer) Seal(plain []byte) ([]byte, error) {
	out := make([]byte, ivSize+len(plain)+tagSize)
	iv := out[:ivSize]
	if _, err := cryptorand.Read(iv[:8]); err != nil {
		return nil, fmt.Errorf("crypto: generating IV: %w", err)
	}
	// Mix a monotonic counter into the low half so IVs never repeat even
	// under a weak entropy source.
	s.counter++
	binary.BigEndian.PutUint64(iv[8:], s.counter)

	ct := out[ivSize : ivSize+len(plain)]
	cipher.NewCTR(s.block, iv).XORKeyStream(ct, plain)

	mac := hmac.New(sha256.New, s.macKey[:])
	mac.Write(out[:ivSize+len(plain)])
	sum := mac.Sum(nil)
	copy(out[ivSize+len(plain):], sum[:tagSize])
	return out, nil
}

// Open authenticates and decrypts a sealed blob, returning a fresh
// plaintext slice.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("crypto: sealed blob too short (%d bytes)", len(sealed))
	}
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	mac := hmac.New(sha256.New, s.macKey[:])
	mac.Write(body)
	sum := mac.Sum(nil)
	if subtle.ConstantTimeCompare(tag, sum[:tagSize]) != 1 {
		return nil, fmt.Errorf("crypto: authentication failed")
	}
	iv := sealed[:ivSize]
	plain := make([]byte, len(sealed)-Overhead)
	cipher.NewCTR(s.block, iv).XORKeyStream(plain, body[ivSize:])
	return plain, nil
}
