// Package crypto implements the block-sealing layer of the threat model
// (§III): "the content of the memory itself is considered encrypted and
// hence secure". The client seals every block before it crosses the
// insecure channel to server storage and opens it on return, so the
// adversary observes only addresses — never plaintext.
//
// Construction: AES-128-CTR with a counter-derived IV, authenticated with
// HMAC-SHA-256 truncated to 16 bytes (encrypt-then-MAC). Stdlib only.
//
// IV/keystream uniqueness: each Sealer draws one 8-byte random prefix from
// crypto/rand at construction; the per-seal IV is prefix ‖ counter where
// counter is a strictly increasing 64-bit block sequence number. CTR mode
// consumes one counter block per 16 bytes of plaintext, so each seal
// *reserves* ⌈len/16⌉ counter values (at least one): the next seal's IV
// starts past everything the previous seal's keystream touched. Within one
// Sealer no counter block — hence no keystream block — is ever reused (the
// 64-bit space cannot wrap in any realistic lifetime), and two Sealers
// sharing a key collide only if their random prefixes collide (2⁻⁶⁴ per
// pair) and their counter ranges overlap — the same birthday bound the
// previous fresh-random-IV-per-seal scheme had, now at one entropy syscall
// per Sealer instead of per slot.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"hash"
	"sync/atomic"
)

const (
	ivSize  = aes.BlockSize // 16
	tagSize = 16            // truncated HMAC-SHA-256
	// Overhead is the sealed-size expansion per block.
	Overhead = ivSize + tagSize
)

// Sealer encrypts and authenticates fixed-size block payloads. It
// implements the oram.Sealer interface (and its in-place extension,
// oram.InplaceSealer). A single Sealer instance is safe for sequential use
// by one goroutine at a time (matching the ORAM client's model); the HMAC
// instance and keystream scratch are deliberately reused across calls so
// that SealTo/OpenTo allocate nothing in steady state. For parallel
// sealing, Clone per-worker instances: clones share the key, IV prefix and
// the atomic counter (so concurrent seals reserve disjoint counter ranges
// and never overlap keystream) while keeping the non-goroutine-safe HMAC
// and scratch state private.
type Sealer struct {
	block    cipher.Block
	macKey   [32]byte
	ivPrefix [8]byte // single crypto/rand read, at construction
	// counter is the strictly increasing 64-bit block sequence number
	// (IV = ivPrefix ‖ counter), shared across clones: every seal reserves
	// its counter blocks with one atomic add, so no two seals — serial or
	// concurrent — ever consume the same counter value under the key.
	counter *atomic.Uint64

	mac hash.Hash           // reusable HMAC-SHA-256 (Reset between uses)
	sum [sha256.Size]byte   // mac.Sum scratch
	ctr [aes.BlockSize]byte // CTR counter-block scratch
	ks  [aes.BlockSize]byte // keystream scratch
}

// NewSealer derives a sealer from a 32-byte master key: the first 16 bytes
// key AES, the full key is stretched into the MAC key. The IV prefix is
// the only randomness drawn — one crypto/rand read per Sealer lifetime.
func NewSealer(master []byte) (*Sealer, error) {
	var prefix [8]byte
	if _, err := cryptorand.Read(prefix[:]); err != nil {
		return nil, fmt.Errorf("crypto: generating IV prefix: %w", err)
	}
	return NewSealerWithPrefix(master, prefix)
}

// NewSealerWithPrefix is NewSealer with a caller-chosen IV prefix instead
// of a random one: two sealers with the same key and prefix produce
// identical ciphertext for identical seal sequences, which is what
// byte-identity tests of the parallel seal path compare. Production code
// must use NewSealer — reusing a prefix under one key collapses the
// birthday-bound argument against cross-Sealer keystream collisions.
func NewSealerWithPrefix(master []byte, prefix [8]byte) (*Sealer, error) {
	if len(master) != 32 {
		return nil, fmt.Errorf("crypto: master key must be 32 bytes, got %d", len(master))
	}
	blk, err := aes.NewCipher(master[:16])
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	s := &Sealer{block: blk, counter: new(atomic.Uint64), ivPrefix: prefix}
	s.macKey = sha256.Sum256(append([]byte("laoram-mac-v1:"), master...))
	s.mac = hmac.New(sha256.New, s.macKey[:])
	return s, nil
}

// Clone returns a worker instance of s for parallel sealing: it shares the
// key, the IV prefix and the counter space (one atomic sequence across all
// clones), with a private HMAC instance and CTR/keystream scratch. Each
// individual instance — the original or a clone — remains single-goroutine,
// but different instances may seal and open concurrently: counter
// reservation guarantees their keystreams never overlap, and opening never
// touches the counter at all.
func (s *Sealer) Clone() *Sealer {
	c := &Sealer{
		block:    s.block, // aes.Block is stateless per call and goroutine-safe
		macKey:   s.macKey,
		ivPrefix: s.ivPrefix,
		counter:  s.counter,
	}
	c.mac = hmac.New(sha256.New, c.macKey[:])
	return c
}

// CounterBlocks returns how many CTR counter values a seal of a plainLen-
// byte payload reserves: one per 16 plaintext bytes, and at least one (the
// IV itself must be unique even for empty payloads).
func CounterBlocks(plainLen int) int {
	blocks := (plainLen + aes.BlockSize - 1) / aes.BlockSize
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// ReserveSeals atomically reserves counter space for count seals of
// plainLen bytes each and returns the sequence number of the first seal;
// seal i of the reservation must use sequence first + i·CounterBlocks(plainLen),
// passed to SealSeqTo. This is the deterministic-fan-out primitive: a batch
// reserved up front and sealed by concurrent workers in any order produces
// ciphertext byte-identical to sealing the same batch serially in index
// order, because the counter assignment depends only on the index.
func (s *Sealer) ReserveSeals(count, plainLen int) uint64 {
	total := uint64(CounterBlocks(plainLen)) * uint64(count)
	return s.counter.Add(total) - total + 1
}

// SealSeqTo is SealTo with an explicitly reserved counter sequence number
// (from ReserveSeals) instead of an inline reservation. The caller is
// responsible for never passing the same sequence twice and for reserving
// enough counter blocks for the payload length — both hold by construction
// when sequences come from ReserveSeals with the same plainLen.
func (s *Sealer) SealSeqTo(dst, plain []byte, seq uint64) error {
	if len(dst) != s.SealedSize(len(plain)) {
		return fmt.Errorf("crypto: SealSeqTo dst len %d, want %d", len(dst), s.SealedSize(len(plain)))
	}
	s.sealAt(dst, plain, seq)
	return nil
}

// NewRandomSealer generates a fresh master key from crypto/rand.
func NewRandomSealer() (*Sealer, error) {
	key := make([]byte, 32)
	if _, err := cryptorand.Read(key); err != nil {
		return nil, fmt.Errorf("crypto: generating key: %w", err)
	}
	return NewSealer(key)
}

// SealedSize implements oram.Sealer.
func (s *Sealer) SealedSize(plain int) int { return plain + Overhead }

// SealTo encrypts plain into dst, laid out as [IV | ciphertext | tag].
// dst must have length SealedSize(len(plain)) and must not overlap plain.
// Allocation-free in steady state.
func (s *Sealer) SealTo(dst, plain []byte) error {
	if len(dst) != s.SealedSize(len(plain)) {
		return fmt.Errorf("crypto: SealTo dst len %d, want %d", len(dst), s.SealedSize(len(plain)))
	}
	// Reserve every counter block this seal's keystream will consume —
	// CTR increments the counter once per 16 plaintext bytes — so the
	// next seal's IV (on this or any clone) starts past them and no
	// keystream block is ever reused under the key. On a single goroutine
	// the atomic add assigns exactly the sequence the old serial counter
	// did, so serial sealing stays byte-identical.
	blocks := uint64(CounterBlocks(len(plain)))
	seq := s.counter.Add(blocks) - blocks + 1
	s.sealAt(dst, plain, seq)
	return nil
}

// sealAt writes [IV | ciphertext | tag] into dst (already length-checked)
// using counter sequence seq for the IV.
func (s *Sealer) sealAt(dst, plain []byte, seq uint64) {
	iv := dst[:ivSize]
	copy(iv[:8], s.ivPrefix[:])
	binary.BigEndian.PutUint64(iv[8:], seq)

	s.xorKeyStream(dst[ivSize:ivSize+len(plain)], plain, iv)

	s.mac.Reset()
	s.mac.Write(dst[:ivSize+len(plain)])
	sum := s.mac.Sum(s.sum[:0])
	copy(dst[ivSize+len(plain):], sum[:tagSize])
}

// OpenTo authenticates sealed and decrypts it into dst, which must have
// length len(sealed)-Overhead and must not overlap sealed. Allocation-free
// in steady state.
func (s *Sealer) OpenTo(dst, sealed []byte) error {
	if len(sealed) < Overhead {
		return fmt.Errorf("crypto: sealed blob too short (%d bytes)", len(sealed))
	}
	if len(dst) != len(sealed)-Overhead {
		return fmt.Errorf("crypto: OpenTo dst len %d, want %d", len(dst), len(sealed)-Overhead)
	}
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	s.mac.Reset()
	s.mac.Write(body)
	sum := s.mac.Sum(s.sum[:0])
	if subtle.ConstantTimeCompare(tag, sum[:tagSize]) != 1 {
		return fmt.Errorf("crypto: authentication failed")
	}
	s.xorKeyStream(dst, body[ivSize:], sealed[:ivSize])
	return nil
}

// Seal encrypts plain into a fresh slice laid out as [IV | ciphertext | tag].
func (s *Sealer) Seal(plain []byte) ([]byte, error) {
	out := make([]byte, s.SealedSize(len(plain)))
	if err := s.SealTo(out, plain); err != nil {
		return nil, err
	}
	return out, nil
}

// Open authenticates and decrypts a sealed blob, returning a fresh
// plaintext slice.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("crypto: sealed blob too short (%d bytes)", len(sealed))
	}
	plain := make([]byte, len(sealed)-Overhead)
	if err := s.OpenTo(plain, sealed); err != nil {
		return nil, err
	}
	return plain, nil
}

// xorKeyStream is AES-CTR over src into dst with the given initial counter
// block, bit-identical to cipher.NewCTR (big-endian increment over the full
// 16-byte block) but without the per-call stream-object allocation —
// sealing sits inside every slot write of the ORAM hot path.
func (s *Sealer) xorKeyStream(dst, src, iv []byte) {
	copy(s.ctr[:], iv)
	for off := 0; off < len(src); off += aes.BlockSize {
		s.block.Encrypt(s.ks[:], s.ctr[:])
		n := len(src) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		subtle.XORBytes(dst[off:off+n], src[off:off+n], s.ks[:n])
		for i := aes.BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
	}
}
