package crypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSealOpenRoundTrip: arbitrary payloads round-trip and ciphertext
// never embeds long plaintext runs.
func TestQuickSealOpenRoundTrip(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	f := func(plain []byte) bool {
		sealed, err := s.Seal(plain)
		if err != nil {
			return false
		}
		if len(sealed) != len(plain)+Overhead {
			return false
		}
		got, err := s.Open(sealed)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, plain) {
			return false
		}
		// Any 16-byte plaintext window must not appear verbatim in the
		// ciphertext body (probability of a false positive is negligible).
		if len(plain) >= 16 && bytes.Contains(sealed, plain[:16]) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTamperAnyByte: flipping any single bit anywhere in the sealed
// blob must fail authentication.
func TestQuickTamperAnyByte(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte{0x5C}, 96)
	sealed, err := s.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	f := func(posRaw uint16, bitRaw uint8) bool {
		pos := int(posRaw) % len(sealed)
		bit := bitRaw % 8
		tampered := append([]byte(nil), sealed...)
		tampered[pos] ^= 1 << bit
		_, err := s.Open(tampered)
		return err != nil
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCrossPayloadIndependence: ciphertexts of different payloads
// under the same key never collide.
func TestQuickCrossPayloadIndependence(t *testing.T) {
	s, err := NewSealer(testKey())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	f := func(plain []byte) bool {
		sealed, err := s.Seal(plain)
		if err != nil {
			return false
		}
		k := string(sealed)
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(33))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
