package shard

import (
	"context"
	"fmt"

	"repro/internal/oram"
	"repro/internal/superblock"
	"repro/internal/trace"
)

// Plan is the sharded preprocessor output: one superblock plan (§IV-B)
// per shard, each built over the shard's slice of the global access
// stream in local-ID space. Because the §IV-B scan is a left-to-right
// pass that only groups co-accessed indices, splitting the stream by
// shard first and scanning each slice independently preserves the
// look-ahead property within every shard — a bin's members are still the
// next S unique indices that shard will serve.
type Plan struct {
	n     int
	plans []*superblock.Plan
}

// Shards returns the partition count the plan was built for.
func (p *Plan) Shards() int { return p.n }

// ShardPlan returns shard s's superblock plan (local-ID space).
func (p *Plan) ShardPlan(s int) *superblock.Plan { return p.plans[s] }

// Bins returns the total bin count across shards.
func (p *Plan) Bins() int {
	total := 0
	for _, sp := range p.plans {
		total += sp.Len()
	}
	return total
}

// UniqueBlocks returns the number of distinct global blocks in the plan
// (partitions are disjoint, so the per-shard counts sum exactly).
func (p *Plan) UniqueBlocks() int {
	total := 0
	for _, sp := range p.plans {
		total += sp.UniqueBlocks()
	}
	return total
}

// MetadataBytes sums the per-shard (superblock → future path) metadata.
func (p *Plan) MetadataBytes() int64 {
	var total int64
	for _, sp := range p.plans {
		total += sp.MetadataBytes()
	}
	return total
}

// SplitStream partitions a global access stream into per-shard local-ID
// streams, preserving relative order within each shard. With one shard the
// split is the identity, so the returned slice aliases stream rather than
// copying it (multi-million-access streams pass through unduplicated).
func SplitStream(stream []uint64, n int) [][]uint64 {
	if n == 1 {
		return [][]uint64{stream}
	}
	out := make([][]uint64, n)
	for _, id := range stream {
		s := ShardOf(id, n)
		out[s] = append(out[s], LocalID(id, n))
	}
	return out
}

// windowSeedStride separates the plan-RNG seed domains of consecutive
// planner windows within one shard: window w of shard s draws its bin
// paths with seed SeedFor(seed, s) + 1 + w*windowSeedStride. Window 0
// therefore uses exactly the seed Preprocess uses — a full-stream window
// is byte-identical to one-shot preprocessing — and later windows stay
// clear of the other per-shard seed slots (client seed at +0, recursive
// position map at +2).
const windowSeedStride = 131

// planSeed returns the deterministic bin-path seed of planner window win
// on shard s (window 0 is the one-shot Preprocess seed).
func (e *Engine) planSeed(s, win int) int64 {
	return SeedFor(e.seed, s) + 1 + int64(win)*windowSeedStride
}

// Preprocess runs the §IV-B scan per shard, concurrently: shard s bins its
// local stream with superblock size sblk and draws bin paths from its own
// tree's leaves with the deterministic seed SeedFor(seed, s)+1 (for a
// 1-shard engine this is the seed the unsharded preprocessor uses).
func (e *Engine) Preprocess(stream []uint64, sblk int) (*Plan, error) {
	for _, id := range stream {
		if err := e.check(id); err != nil {
			return nil, err
		}
	}
	return e.preprocessWindow(stream, sblk, 0)
}

// preprocessWindow is the shared scan behind Preprocess (window 0) and the
// incremental Planner (windows 1..): split the window's slice of the
// global stream by shard, then bin every local slice concurrently with the
// window's deterministic seed. Callers must have validated the ids.
func (e *Engine) preprocessWindow(stream []uint64, sblk, win int) (*Plan, error) {
	locals := SplitStream(stream, e.n)
	p := &Plan{n: e.n, plans: make([]*superblock.Plan, e.n)}
	err := e.fanOut(func(s int) error {
		// A shard absent from the stream gets an empty plan (zero bins).
		sp, err := superblock.NewPlan(locals[s], superblock.PlanConfig{
			S:      sblk,
			Leaves: e.subs[s].Client.Geometry().Leaves(),
			Rand:   trace.NewRNG(e.planSeed(s, win)),
		})
		p.plans[s] = sp
		return err
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// LoadForPlan bulk-initialises every shard concurrently with look-ahead
// pre-placement: each block starts on the path of its first superblock bin
// in its shard's plan (the converged steady state of §IV-B), everything
// else uniformly.
func (e *Engine) LoadForPlan(p *Plan, payload func(id uint64) []byte) error {
	return e.LoadForPlanContext(context.Background(), p, payload)
}

// LoadForPlanContext is LoadForPlan with cooperative cancellation at shard
// granularity (see LoadContext).
func (e *Engine) LoadForPlanContext(ctx context.Context, p *Plan, payload func(id uint64) []byte) error {
	if p == nil {
		return fmt.Errorf("shard: nil plan")
	}
	if p.n != e.n {
		return fmt.Errorf("shard: plan built for %d shards, engine has %d", p.n, e.n)
	}
	leafOf := make([]func(oram.BlockID) oram.Leaf, e.n)
	for s := 0; s < e.n; s++ {
		sp, client := p.plans[s], e.subs[s].Client
		leafOf[s] = func(local oram.BlockID) oram.Leaf {
			if l := sp.FirstLeaf(local); l != oram.NoLeaf {
				return l
			}
			return client.RandomLeaf()
		}
	}
	return e.load(ctx, e.entries, leafOf, payload)
}
