package shard

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/oram"
	"repro/internal/trace"
)

// countedEngine is payloadEngine with the client RNGs routed through
// CountedSources, the checkpointable form the public laoram stack builds.
func countedEngine(t testing.TB, n int, entries uint64, blockSize int, seed int64) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:  n,
		Entries: entries,
		Seed:    seed,
		Build: func(s int, per uint64, sd int64) (Sub, error) {
			g, err := oram.NewGeometry(oram.GeometryConfig{
				LeafBits: oram.LeafBitsFor(per), LeafZ: 4, BlockSize: blockSize,
			})
			if err != nil {
				return Sub{}, err
			}
			ps, err := oram.NewPayloadStore(g, nil)
			if err != nil {
				return Sub{}, err
			}
			meter := memsim.NewMeter(memsim.DDR4Default())
			cs := oram.NewCountingStore(ps, meter)
			rng, src := trace.NewCountedRNG(sd)
			client, err := oram.NewClient(oram.ClientConfig{
				Store: cs, Rand: rng, Evict: oram.PaperEvict,
				Timer: meter, StashHits: true, Blocks: per,
			})
			if err != nil {
				return Sub{}, err
			}
			return Sub{Client: client, Store: cs, Meter: meter, Src: src}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineStateRoundTrip: checkpoint an engine mid-run, keep running it
// to record the reference continuation, then restore a second engine from
// the checkpoint (client state here, tree bytes via store snapshots) and
// check the continuation is byte-identical — reads, stats and a second
// checkpoint of the final state.
func TestEngineStateRoundTrip(t *testing.T) {
	const (
		shards  = 4
		entries = 512
		block   = 16
		seed    = 42
	)
	e := countedEngine(t, shards, entries, block, seed)
	if err := e.Load(entries, func(id uint64) []byte { return payloadFor(id, block) }); err != nil {
		t.Fatal(err)
	}
	ids := trace.NewRNG(7)
	for i := 0; i < 300; i++ {
		if _, err := e.Read(uint64(ids.Int63n(entries))); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint: client state + every shard's tree.
	var clientCk bytes.Buffer
	if err := e.SaveState(&clientCk); err != nil {
		t.Fatal(err)
	}
	trees := make([]bytes.Buffer, shards)
	for s := 0; s < shards; s++ {
		if err := e.Sub(s).Store.Save(&trees[s]); err != nil {
			t.Fatal(err)
		}
	}

	// Reference continuation on the original engine.
	contIDs := make([]uint64, 200)
	for i := range contIDs {
		contIDs[i] = uint64(ids.Int63n(entries))
	}
	want := make([][]byte, len(contIDs))
	for i, id := range contIDs {
		p, err := e.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = bytes.Clone(p)
	}
	var wantFinal bytes.Buffer
	if err := e.SaveState(&wantFinal); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, restore trees + client state, re-run.
	e2 := countedEngine(t, shards, entries, block, seed)
	for s := 0; s < shards; s++ {
		if err := e2.Sub(s).Store.Load(bytes.NewReader(trees[s].Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.LoadState(bytes.NewReader(clientCk.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, id := range contIDs {
		p, err := e2.Read(id)
		if err != nil {
			t.Fatalf("restored read %d: %v", id, err)
		}
		if !bytes.Equal(p, want[i]) {
			t.Fatalf("continuation read %d of block %d diverged", i, id)
		}
	}
	var gotFinal bytes.Buffer
	if err := e2.SaveState(&gotFinal); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantFinal.Bytes(), gotFinal.Bytes()) {
		t.Error("final checkpoint of restored engine differs from original run")
	}
	for s := 0; s < shards; s++ {
		a, b := e.Sub(s).Client.Stats(), e2.Sub(s).Client.Stats()
		if a != b {
			t.Errorf("shard %d stats diverged: %+v vs %+v", s, a, b)
		}
		if e.Sub(s).Client.Stash().Peak() != e2.Sub(s).Client.Stash().Peak() {
			t.Errorf("shard %d stash peak diverged", s)
		}
	}
}

// TestEngineStateErrors: envelope validation — wrong geometry-defining
// parameters, uncheckpointable engines, garbage input.
func TestEngineStateErrors(t *testing.T) {
	e := countedEngine(t, 2, 64, 8, 1)
	if err := e.Load(64, func(id uint64) []byte { return make([]byte, 8) }); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := e.SaveState(&ck); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadState(strings.NewReader("not a checkpoint, definitely")); err == nil {
		t.Error("garbage accepted")
	}
	for _, other := range []*Engine{
		countedEngine(t, 4, 64, 8, 1),  // shard count mismatch
		countedEngine(t, 2, 128, 8, 1), // entries mismatch
		countedEngine(t, 2, 64, 8, 9),  // seed mismatch
	} {
		if err := other.LoadState(bytes.NewReader(ck.Bytes())); err == nil {
			t.Errorf("mismatched engine (%d shards, %d entries, seed %d) accepted checkpoint",
				other.Shards(), other.Entries(), other.seed)
		}
	}
	// An engine built without counted sources refuses both directions.
	plain := payloadEngine(t, 2, 64, 8, 1)
	if err := plain.SaveState(&bytes.Buffer{}); err == nil {
		t.Error("SaveState without counted RNG accepted")
	}
	if err := plain.LoadState(bytes.NewReader(ck.Bytes())); err == nil {
		t.Error("LoadState without counted RNG accepted")
	}
}
