package shard

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/oram"
	"repro/internal/trace"
)

// payloadEngine builds an N-shard engine over a payload store (real bytes)
// with per-shard meters and counters, the way the public API does.
func payloadEngine(t testing.TB, n int, entries uint64, blockSize int, seed int64) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:  n,
		Entries: entries,
		Seed:    seed,
		Build: func(s int, per uint64, sd int64) (Sub, error) {
			g, err := oram.NewGeometry(oram.GeometryConfig{
				LeafBits: oram.LeafBitsFor(per), LeafZ: 4, BlockSize: blockSize,
			})
			if err != nil {
				return Sub{}, err
			}
			ps, err := oram.NewPayloadStore(g, nil)
			if err != nil {
				return Sub{}, err
			}
			meter := memsim.NewMeter(memsim.DDR4Default())
			cs := oram.NewCountingStore(ps, meter)
			client, err := oram.NewClient(oram.ClientConfig{
				Store: cs, Rand: trace.NewRNG(sd), Evict: oram.PaperEvict,
				Timer: meter, StashHits: true, Blocks: per,
			})
			if err != nil {
				return Sub{}, err
			}
			return Sub{Client: client, Store: cs, Meter: meter}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func payloadFor(id uint64, blockSize int) []byte {
	p := make([]byte, blockSize)
	for i := range p {
		p[i] = byte(id + uint64(i)*7)
	}
	return p
}

// TestPartition pins the deterministic ID→shard assignment: the modulo
// split is a bijection between the global space and the union of dense
// per-shard spaces, and loadCount partitions any prefix exactly.
func TestPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		seen := make(map[uint64]bool)
		const N = 1000
		for id := uint64(0); id < N; id++ {
			s := ShardOf(id, n)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: ShardOf(%d)=%d out of range", n, id, s)
			}
			if s != ShardOf(id, n) {
				t.Fatalf("n=%d: ShardOf(%d) not deterministic", n, id)
			}
			local := LocalID(id, n)
			if local >= PerShardEntries(N, n) {
				t.Fatalf("n=%d: LocalID(%d)=%d exceeds capacity %d", n, id, local, PerShardEntries(N, n))
			}
			back := GlobalID(local, s, n)
			if back != id {
				t.Fatalf("n=%d: GlobalID(LocalID(%d))=%d", n, id, back)
			}
			key := uint64(s)<<32 | local
			if seen[key] {
				t.Fatalf("n=%d: (shard,local) collision at id %d", n, id)
			}
			seen[key] = true
		}
		var total uint64
		for s := 0; s < n; s++ {
			total += LoadCount(N, s, n)
		}
		if total != N {
			t.Errorf("n=%d: loadCounts sum to %d, want %d", n, total, N)
		}
	}
}

// TestCrossShardBatchMatchesSingle is the cross-shard correctness check:
// the same logical workload (bulk load, scattered writes, batched reads)
// must return the same payload bytes from a 4-shard engine as from the
// 1-shard reference.
func TestCrossShardBatchMatchesSingle(t *testing.T) {
	const entries = 512
	const bs = 32
	single := payloadEngine(t, 1, entries, bs, 7)
	sharded := payloadEngine(t, 4, entries, bs, 7)
	for _, e := range []*Engine{single, sharded} {
		if err := e.Load(entries, func(id uint64) []byte { return payloadFor(id, bs) }); err != nil {
			t.Fatal(err)
		}
	}
	// Scattered single writes land in different shards.
	for _, id := range []uint64{0, 1, 2, 3, 63, 127, 255, 511} {
		fresh := payloadFor(id+1000, bs)
		if err := single.Write(id, fresh); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Write(id, fresh); err != nil {
			t.Fatal(err)
		}
	}
	// A batch mixing written and untouched blocks, shard-interleaved.
	ids := []uint64{511, 0, 17, 255, 40, 63, 1, 301, 2, 127, 3, 99}
	wantBatch, err := single.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := sharded.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !bytes.Equal(gotBatch[i], wantBatch[i]) {
			t.Errorf("batch[%d] (id %d): sharded %x != single %x", i, ids[i], gotBatch[i][:4], wantBatch[i][:4])
		}
	}
	// And per-id reads agree with the batch merge order.
	for i, id := range ids {
		got, err := sharded.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, gotBatch[i]) {
			t.Errorf("Read(%d) disagrees with ReadBatch slot %d", id, i)
		}
	}
	st := sharded.Stats()
	if st.Access.Accesses == 0 || st.Counters.BytesRead == 0 {
		t.Errorf("sharded stats not aggregated: %+v", st)
	}
}

// TestWriteBatch checks the write fan-out path and its validation.
func TestWriteBatch(t *testing.T) {
	const entries = 256
	const bs = 16
	e := payloadEngine(t, 4, entries, bs, 11)
	ids := []uint64{5, 250, 17, 128, 3}
	data := make([][]byte, len(ids))
	for i, id := range ids {
		data[i] = payloadFor(id, bs)
	}
	if err := e.WriteBatch(ids, data); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !bytes.Equal(got[i], data[i]) {
			t.Errorf("id %d: round trip mismatch", ids[i])
		}
	}
	if err := e.WriteBatch(ids, data[:2]); err == nil {
		t.Error("mismatched ids/data lengths accepted")
	}
	if err := e.WriteBatch([]uint64{entries}, [][]byte{data[0]}); err == nil {
		t.Error("out-of-range id accepted")
	}
}

// TestSessionConcurrentMatchesSerial builds two identically-seeded engines
// and executes the same sharded plan once via the concurrent Run scheduler
// and once via the serial round-robin Step loop. Per-shard work is
// deterministic given the seed, so the final table contents and the
// aggregate counters must be identical regardless of lane interleaving.
func TestSessionConcurrentMatchesSerial(t *testing.T) {
	const entries = 1 << 10
	const bs = 16
	const S = 4
	stream, err := trace.Generate(trace.Config{Kind: trace.KindKaggle, N: entries, Count: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	visitGen := func() NewVisit {
		return func(shard int) Visit {
			// Lane-local counter: deterministic per shard because each
			// lane consumes its own bins in plan order.
			var step byte
			return func(id uint64, payload []byte) []byte {
				step++
				out := make([]byte, len(payload))
				copy(out, payload)
				out[0] = byte(id) ^ step
				return out
			}
		}
	}

	run := func(concurrent bool) (*Engine, core.Stats) {
		t.Helper()
		e := payloadEngine(t, 4, entries, bs, 21)
		plan, err := e.Preprocess(stream, S)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.LoadForPlan(plan, func(id uint64) []byte { return payloadFor(id, bs) }); err != nil {
			t.Fatal(err)
		}
		sess, err := e.NewSession(plan)
		if err != nil {
			t.Fatal(err)
		}
		nv := visitGen()
		if concurrent {
			if err := sess.Run(nv); err != nil {
				t.Fatal(err)
			}
		} else {
			visitors := make([]Visit, e.Shards())
			for i := range visitors {
				visitors[i] = nv(i)
			}
			// Serial round-robin through the same lanes (next() both
			// selects the lane and advances the cursor).
			for {
				i := sess.next()
				if i < 0 {
					break
				}
				if _, err := sess.Lane(i).StepBin(sess.wrap(i, visitors[i])); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !sess.Done() {
			t.Fatal("session not done")
		}
		return e, sess.Stats()
	}

	eConc, stConc := run(true)
	eSer, stSer := run(false)
	if stConc != stSer {
		t.Errorf("stats diverge: concurrent %+v serial %+v", stConc, stSer)
	}
	// Compare every block touched by the stream.
	uniq := map[uint64]bool{}
	for _, id := range stream {
		uniq[id] = true
	}
	for id := range uniq {
		a, err := eConc.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eSer.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("block %d diverges between concurrent and serial execution", id)
		}
	}
}

// TestPreprocessPartition checks that per-shard plans only reference local
// IDs belonging to their shard and that pre-placement makes every bin a
// single-path fetch (zero cold reads), as in the single-instance engine.
func TestPreprocessPartition(t *testing.T) {
	const entries = 1 << 10
	e := payloadEngine(t, 4, entries, 16, 5)
	stream, err := trace.Generate(trace.Config{Kind: trace.KindGaussian, N: entries, Count: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Preprocess(stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	locals := SplitStream(stream, 4)
	for s := 0; s < 4; s++ {
		seen := map[uint64]bool{}
		for _, l := range locals[s] {
			seen[l] = true
		}
		sp := plan.ShardPlan(s)
		for b := 0; b < sp.Len(); b++ {
			for _, id := range sp.Bin(b).Blocks {
				if !seen[uint64(id)] {
					t.Fatalf("shard %d bin %d references local id %d not in shard stream", s, b, id)
				}
			}
		}
	}
	if plan.Bins() == 0 || plan.UniqueBlocks() == 0 || plan.MetadataBytes() == 0 {
		t.Fatalf("plan aggregation empty: bins=%d uniq=%d meta=%d", plan.Bins(), plan.UniqueBlocks(), plan.MetadataBytes())
	}
	if err := e.LoadForPlan(plan, nil); err != nil {
		t.Fatal(err)
	}
	sess, err := e.NewSession(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(nil); err != nil {
		t.Fatal(err)
	}
	if cold := sess.Stats().ColdPathReads; cold != 0 {
		t.Errorf("pre-placed sharded run had %d cold path reads", cold)
	}
	if got, want := sess.Stats().Accesses, uint64(plan.accessCount()); got != want {
		t.Errorf("session served %d accesses, plan holds %d", got, want)
	}
}

// accessCount sums bin membership across shards (test helper).
func (p *Plan) accessCount() int {
	total := 0
	for _, sp := range p.plans {
		for b := 0; b < sp.Len(); b++ {
			total += len(sp.Bin(b).Blocks)
		}
	}
	return total
}

// TestSchedulerStress hammers the concurrent fan-out under load so `go
// test -race ./internal/shard/...` exercises the scheduler: repeated
// batched reads and writes over 8 lanes plus a full concurrent session.
func TestSchedulerStress(t *testing.T) {
	const entries = 1 << 11
	const bs = 16
	e := payloadEngine(t, 8, entries, bs, 13)
	if err := e.Load(entries, func(id uint64) []byte { return payloadFor(id, bs) }); err != nil {
		t.Fatal(err)
	}
	rng := trace.NewRNG(99)
	for round := 0; round < 20; round++ {
		ids := make([]uint64, 64)
		data := make([][]byte, len(ids))
		for i := range ids {
			ids[i] = uint64(rng.Int63n(entries))
			data[i] = payloadFor(ids[i]+uint64(round), bs)
		}
		if err := e.WriteBatch(ids, data); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ReadBatch(ids); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := trace.Generate(trace.Config{Kind: trace.KindUniform, N: entries, Count: 5000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Preprocess(stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := e.NewSession(plan)
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(shard int) Visit {
		return func(id uint64, payload []byte) []byte {
			out := make([]byte, len(payload))
			copy(out, payload)
			out[0] ^= byte(shard + 1)
			return out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Done() {
		t.Error("session incomplete after Run")
	}
}

// TestConfigValidation covers Engine construction errors.
func TestConfigValidation(t *testing.T) {
	build := func(s int, per uint64, sd int64) (Sub, error) { return Sub{}, fmt.Errorf("boom") }
	if _, err := New(Config{Shards: 0, Entries: 8, Build: build}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := New(Config{Shards: 1, Entries: 0, Build: build}); err == nil {
		t.Error("0 entries accepted")
	}
	if _, err := New(Config{Shards: 1, Entries: 8}); err == nil {
		t.Error("nil Build accepted")
	}
	if _, err := New(Config{Shards: 16, Entries: 8, Build: build}); err == nil {
		t.Error("more shards than entries accepted")
	}
	if _, err := New(Config{Shards: 1, Entries: 8, Build: build}); err == nil {
		t.Error("Build error not propagated")
	}
	e := payloadEngine(t, 2, 64, 16, 1)
	if _, err := e.Read(64); err == nil {
		t.Error("out-of-range Read accepted")
	}
	if err := e.Write(1000, nil); err == nil {
		t.Error("out-of-range Write accepted")
	}
	if _, err := e.Preprocess([]uint64{1, 2, 64}, 2); err == nil {
		t.Error("out-of-range stream id accepted")
	}
	if err := e.LoadForPlan(nil, nil); err == nil {
		t.Error("nil plan accepted")
	}
	other := payloadEngine(t, 4, 64, 16, 1)
	p, err := other.Preprocess([]uint64{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadForPlan(p, nil); err == nil {
		t.Error("shard-count mismatch plan accepted for load")
	}
	if _, err := e.NewSession(p); err == nil {
		t.Error("shard-count mismatch plan accepted for session")
	}
}
