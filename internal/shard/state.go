package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/oram"
)

// Engine-level checkpoint: the client half of the failover story. A
// training run checkpoints at chunk boundaries by pairing one
// Engine.SaveState (position maps, stashes, RNG positions, access stats —
// everything trusted-side) with per-node server tree snapshots taken at
// the same instant. Restoring both rewinds the whole distributed system to
// that boundary, after which re-running the chunk is byte-identical to a
// run that never failed: all execution randomness flows from the counted
// per-shard RNGs serialised here, and per-chunk plan RNGs are freshly
// seeded from the engine seed on every Preprocess call (see plan.go).
// DESIGN.md invariant #11 states the guarantee; the chaos suite enforces
// it.
//
// Layout (little-endian): magic u64 · shards u64 · entries u64 · seed u64,
// then per shard: rngSeed u64 · rngDraws u64 · 6×stats u64 · stashPeak u64
// · blobLen u64 · client SaveState blob. Each client blob is
// length-prefixed and read through an io.LimitReader because
// oram.Client.LoadState buffers its reader and would otherwise consume the
// next shard's section.

// stateMagic versions the engine checkpoint envelope ("LAORENG1").
const stateMagic = 0x4C414F52454E4731

// SaveState serialises the trusted client state of every shard. It
// requires each Sub to have been built with a CountedSource (Sub.Src) and
// a flat position map; it returns an error otherwise.
func (e *Engine) SaveState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var u64 [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	for _, v := range []uint64{stateMagic, uint64(e.n), e.entries, uint64(e.seed)} {
		if err := put(v); err != nil {
			return err
		}
	}
	var blob bytes.Buffer
	for s, sub := range e.subs {
		if sub.Src == nil {
			return fmt.Errorf("shard: shard %d not checkpointable (built without a counted RNG source)", s)
		}
		blob.Reset()
		if err := sub.Client.SaveState(&blob); err != nil {
			return fmt.Errorf("shard: shard %d: %w", s, err)
		}
		st := sub.Client.Stats()
		for _, v := range []uint64{
			uint64(sub.Src.SeedValue()), sub.Src.Draws(),
			st.Accesses, st.StashHits, st.PathReads, st.PathWrites, st.DummyReads, st.Remaps,
			uint64(sub.Client.Stash().Peak()),
			uint64(blob.Len()),
		} {
			if err := put(v); err != nil {
				return err
			}
		}
		if _, err := bw.Write(blob.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState restores state saved by SaveState into this engine, which must
// have been built with the same shard count, entries and seed. After
// LoadState the engine's future behaviour is byte-identical to the saved
// engine's.
func (e *Engine) LoadState(r io.Reader) error {
	return e.loadState(r, nil)
}

// LoadStateLanes restores only the shards pick marks true from a SaveState
// envelope, leaving every other shard's live client state untouched — the
// per-shard half of re-placement, where a dead node's lanes rewind to the
// last checkpoint while healthy lanes keep running forward. pick must have
// one entry per shard.
func (e *Engine) LoadStateLanes(r io.Reader, pick []bool) error {
	if len(pick) != e.n {
		return fmt.Errorf("shard: lane selector has %d entries, engine has %d shards", len(pick), e.n)
	}
	return e.loadState(r, pick)
}

// loadState parses a SaveState envelope; a nil pick restores every shard,
// otherwise only the picked shards are restored (the rest of the envelope
// is validated and skipped).
func (e *Engine) loadState(r io.Reader, pick []bool) error {
	br := bufio.NewReader(r)
	var u64 [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	magic, err := get()
	if err != nil {
		return fmt.Errorf("shard: checkpoint header: %w", err)
	}
	if magic != stateMagic {
		return fmt.Errorf("shard: bad checkpoint magic %#x", magic)
	}
	for _, want := range []struct {
		name string
		v    uint64
	}{
		{"shards", uint64(e.n)}, {"entries", e.entries}, {"seed", uint64(e.seed)},
	} {
		got, err := get()
		if err != nil {
			return err
		}
		if got != want.v {
			return fmt.Errorf("shard: checkpoint %s %d, engine has %d", want.name, got, want.v)
		}
	}
	for s, sub := range e.subs {
		if sub.Src == nil {
			return fmt.Errorf("shard: shard %d not checkpointable (built without a counted RNG source)", s)
		}
		var vals [10]uint64
		for i := range vals {
			if vals[i], err = get(); err != nil {
				return fmt.Errorf("shard: shard %d section: %w", s, err)
			}
		}
		blobLen := vals[9]
		if blobLen > 1<<32 {
			return fmt.Errorf("shard: shard %d client blob of %d bytes implausible", s, blobLen)
		}
		lr := io.LimitReader(br, int64(blobLen))
		if pick != nil && !pick[s] {
			// Not selected: skip this shard's blob, keep its live state.
			if _, err := io.Copy(io.Discard, lr); err != nil {
				return fmt.Errorf("shard: shard %d blob skip: %w", s, err)
			}
			continue
		}
		if err := sub.Client.LoadState(lr); err != nil {
			return fmt.Errorf("shard: shard %d: %w", s, err)
		}
		// The blob's byte length is authoritative; drain whatever the
		// client's buffered parse left so the next section starts aligned.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return fmt.Errorf("shard: shard %d blob drain: %w", s, err)
		}
		sub.Src.Restore(int64(vals[0]), vals[1])
		*sub.Client.StatsMut() = oram.AccessStats{
			Accesses: vals[2], StashHits: vals[3], PathReads: vals[4],
			PathWrites: vals[5], DummyReads: vals[6], Remaps: vals[7],
		}
		// After LoadState rebuilt the stash; peak is clamped up to the
		// restored occupancy.
		sub.Client.Stash().RestorePeak(int(vals[8]))
	}
	return nil
}
