// Package shard implements the sharded concurrent ORAM engine: the
// embedding table is hash-partitioned across N independent LAORAM
// instances, each with its own position map, stash, server tree and
// superblock preprocessor, and a concurrent scheduler fans batches of
// accesses out to per-shard worker goroutines and merges the results.
//
// Sharding is the scaling move DLRM-style deployments already make for
// plaintext embedding tables (state is split across many tables/hosts);
// here each partition is a complete, self-contained ORAM. The security
// argument is unchanged per shard: within a shard every fetched path was
// drawn uniformly (§VI of the paper), and the shard an access routes to
// depends only on the public block ID stream the §IV-B preprocessor
// already scans, so the server learns nothing beyond what the
// single-instance design leaks. What sharding buys is parallelism: the N
// trees are independent, so path fetches, evictions and plan execution
// proceed concurrently — on real hardware over N memory channels or
// hosts, in simulation over N independent memsim meters (elapsed time is
// the slowest shard's clock, see Stats).
//
// The partition is the modulo split
//
//	shard(id)  = id mod N
//	local(id)  = id div N
//
// which is deterministic, trivially invertible (both properties the
// position-map translation needs: each shard's map stays dense over
// 0..ceil(Entries/N)-1) and balanced to within one block for the dense ID
// spaces embedding tables use. A mixing hash would destroy the dense
// local ID space without changing the security argument, since shard
// routing is public either way.
//
// See DESIGN.md ("Sharded engine") for the paper-to-module map and the
// abl-shards experiment measuring throughput vs shard count.
package shard

import (
	"context"
	"fmt"

	"repro/internal/memsim"
	"repro/internal/oram"
	"repro/internal/trace"
)

// SeedStride separates the deterministic RNG seed domains of neighbouring
// shards: shard i derives its client seed as base + i*SeedStride and its
// per-window plan seeds from the slots in between. Shard 0 therefore uses
// exactly the seeds the single-instance engine uses, which is what makes a
// 1-shard engine byte-identical to the unsharded path.
const SeedStride = 1_000_003

// SeedFor returns the base RNG seed of a shard.
func SeedFor(base int64, shard int) int64 { return base + int64(shard)*SeedStride }

// ShardOf routes a global block ID to its shard (the partition function).
func ShardOf(id uint64, n int) int { return int(id % uint64(n)) }

// LocalID translates a global block ID to the dense per-shard ID space.
func LocalID(id uint64, n int) uint64 { return id / uint64(n) }

// GlobalID inverts (ShardOf, LocalID).
func GlobalID(local uint64, shard, n int) uint64 { return local*uint64(n) + uint64(shard) }

// PerShardEntries returns the per-shard position-map capacity for a table
// of entries blocks split n ways (every shard gets the same capacity; the
// last partial stripe leaves at most one slack slot per shard).
func PerShardEntries(entries uint64, n int) uint64 {
	return (entries + uint64(n) - 1) / uint64(n)
}

// Sub is one shard's engine stack. Client is required; Store and Meter are
// optional observability wrappers the caller may have threaded under the
// client (traffic counters, simulated clock). Src, when the builder wires
// the Client's RNG through a trace.CountedSource, is what makes the shard
// checkpointable: Engine.SaveState serialises (seed, draws) so a restored
// engine resumes the exact leaf-selection stream (see state.go).
type Sub struct {
	Client *oram.Client
	Store  *oram.CountingStore
	Meter  *memsim.Meter
	Src    *trace.CountedSource
	// Prefetch, when non-nil, receives look-ahead path hints: as soon as a
	// window's superblock plan exists, the bin leaves are handed to the
	// tiered store so it can fault the paths in from disk before the
	// session arrives (see prefetch.go). Hints never change what the store
	// answers — DESIGN.md invariant #14 — so in-memory stacks leave this
	// nil at zero cost.
	Prefetch oram.PathPrefetcher
}

// Config assembles an Engine.
type Config struct {
	// Shards is the number of partitions N (>= 1).
	Shards int
	// Entries is the global block count; shard capacity is
	// PerShardEntries(Entries, Shards).
	Entries uint64
	// Seed is the base RNG seed; shard i is built around
	// SeedFor(Seed, i).
	Seed int64
	// Build constructs one shard's stack. entries is the per-shard
	// capacity and seed the shard's base seed (already strided). The
	// returned Client must be configured with Blocks = entries.
	Build func(shard int, entries uint64, seed int64) (Sub, error)
}

// Engine is the sharded ORAM: N independent instances behind one flat
// block-ID space. Single accesses route inline on the calling goroutine
// (so a 1-shard engine behaves exactly like an unsharded client);
// batch operations, loads, preprocessing and session execution fan out to
// one worker goroutine per shard.
//
// The Engine itself is not safe for concurrent use by multiple
// goroutines; concurrency happens inside batch calls, across shards.
type Engine struct {
	n       int
	entries uint64
	seed    int64
	subs    []Sub
}

// New builds the N shard stacks via cfg.Build.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Config.Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Entries == 0 {
		return nil, fmt.Errorf("shard: Config.Entries must be > 0")
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("shard: Config.Build is required")
	}
	if uint64(cfg.Shards) > cfg.Entries {
		return nil, fmt.Errorf("shard: %d shards over %d entries leaves empty shards", cfg.Shards, cfg.Entries)
	}
	e := &Engine{n: cfg.Shards, entries: cfg.Entries, seed: cfg.Seed}
	per := PerShardEntries(cfg.Entries, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sub, err := cfg.Build(i, per, SeedFor(cfg.Seed, i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sub.Client == nil {
			return nil, fmt.Errorf("shard %d: Build returned nil Client", i)
		}
		if got := sub.Client.PosMap().Len(); got < per {
			return nil, fmt.Errorf("shard %d: client holds %d blocks, need %d", i, got, per)
		}
		e.subs = append(e.subs, sub)
	}
	return e, nil
}

// Shards returns the partition count N.
func (e *Engine) Shards() int { return e.n }

// Entries returns the global block count.
func (e *Engine) Entries() uint64 { return e.entries }

// Sub exposes shard i's stack (read-only use: stats, geometry).
func (e *Engine) Sub(i int) Sub { return e.subs[i] }

func (e *Engine) check(id uint64) error {
	if id >= e.entries {
		return fmt.Errorf("shard: block %d out of range (have %d)", id, e.entries)
	}
	return nil
}

// Read obliviously fetches one block, routing inline to its shard.
func (e *Engine) Read(id uint64) ([]byte, error) {
	if err := e.check(id); err != nil {
		return nil, err
	}
	return e.subs[ShardOf(id, e.n)].Client.Read(oram.BlockID(LocalID(id, e.n)))
}

// ReadInto obliviously fetches one block into buf's capacity (see
// oram.Client.ReadInto): the allocation-free read form for steady-state
// loops over sealed payload stores.
func (e *Engine) ReadInto(id uint64, buf []byte) ([]byte, error) {
	if err := e.check(id); err != nil {
		return nil, err
	}
	return e.subs[ShardOf(id, e.n)].Client.ReadInto(oram.BlockID(LocalID(id, e.n)), buf)
}

// Write obliviously updates (or creates) one block.
func (e *Engine) Write(id uint64, data []byte) error {
	if err := e.check(id); err != nil {
		return err
	}
	return e.subs[ShardOf(id, e.n)].Client.Write(oram.BlockID(LocalID(id, e.n)), data)
}

// ReadBatch fans ids out to per-shard workers and merges the payloads back
// in request order. Within a shard, accesses execute in batch order, so
// results are deterministic for a fixed seed regardless of scheduling.
func (e *Engine) ReadBatch(ids []uint64) ([][]byte, error) {
	return e.ReadBatchContext(context.Background(), ids)
}

// ReadBatchContext is ReadBatch with cooperative cancellation: every shard
// worker checks ctx before each access, so a cancelled context drains the
// fan-out at the next access boundary and returns ctx.Err(). The check
// consumes no randomness — an uncancelled batch is byte-identical to
// ReadBatch.
func (e *Engine) ReadBatchContext(ctx context.Context, ids []uint64) ([][]byte, error) {
	out := make([][]byte, len(ids))
	lanes, err := e.split(ids)
	if err != nil {
		return nil, err
	}
	err = e.fanOut(func(s int) error {
		c := e.subs[s].Client
		for _, j := range lanes[s] {
			if err := ctx.Err(); err != nil {
				return err
			}
			p, err := c.Read(oram.BlockID(LocalID(ids[j], e.n)))
			if err != nil {
				return err
			}
			out[j] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBatch fans (ids[i], data[i]) pairs out to per-shard workers.
func (e *Engine) WriteBatch(ids []uint64, data [][]byte) error {
	return e.WriteBatchContext(context.Background(), ids, data)
}

// WriteBatchContext is WriteBatch with cooperative cancellation (see
// ReadBatchContext for the contract).
func (e *Engine) WriteBatchContext(ctx context.Context, ids []uint64, data [][]byte) error {
	if len(ids) != len(data) {
		return fmt.Errorf("shard: WriteBatch got %d ids, %d payloads", len(ids), len(data))
	}
	lanes, err := e.split(ids)
	if err != nil {
		return err
	}
	return e.fanOut(func(s int) error {
		c := e.subs[s].Client
		for _, j := range lanes[s] {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := c.Write(oram.BlockID(LocalID(ids[j], e.n)), data[j]); err != nil {
				return err
			}
		}
		return nil
	})
}

// split groups batch positions by owning shard, preserving batch order
// within each lane.
func (e *Engine) split(ids []uint64) ([][]int, error) {
	lanes := make([][]int, e.n)
	for j, id := range ids {
		if err := e.check(id); err != nil {
			return nil, err
		}
		s := ShardOf(id, e.n)
		lanes[s] = append(lanes[s], j)
	}
	return lanes, nil
}

// LoadCount is |{id < n : id ≡ s (mod N)}|: how many of the first n global
// IDs shard s owns (its bulk-load count).
func LoadCount(n uint64, s, shards int) uint64 {
	if uint64(s) >= n {
		return 0
	}
	return (n-uint64(s)-1)/uint64(shards) + 1
}

// Load bulk-initialises blocks 0..n-1 of the global space with random
// placement, each shard loading its partition concurrently. payload (may
// be nil) receives global IDs.
func (e *Engine) Load(n uint64, payload func(id uint64) []byte) error {
	return e.load(context.Background(), n, nil, payload)
}

// LoadContext is Load with cooperative cancellation at shard granularity:
// ctx is checked before each shard starts its bulk load (a shard load in
// flight runs to completion, keeping the tree consistent).
func (e *Engine) LoadContext(ctx context.Context, n uint64, payload func(id uint64) []byte) error {
	return e.load(ctx, n, nil, payload)
}

func (e *Engine) load(ctx context.Context, n uint64, leafOf []func(oram.BlockID) oram.Leaf, payload func(id uint64) []byte) error {
	if n > e.entries {
		return fmt.Errorf("shard: Load of %d blocks exceeds configured %d", n, e.entries)
	}
	return e.fanOut(func(s int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		cnt := LoadCount(n, s, e.n)
		if cnt == 0 {
			return nil
		}
		var pl func(oram.BlockID) []byte
		if payload != nil {
			pl = func(local oram.BlockID) []byte {
				return payload(GlobalID(uint64(local), s, e.n))
			}
		}
		var lf func(oram.BlockID) oram.Leaf
		if leafOf != nil {
			lf = leafOf[s]
		}
		return e.subs[s].Client.Load(cnt, lf, pl)
	})
}
