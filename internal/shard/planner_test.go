package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/trace"
)

// testSource streams a slice in fixed-size bites, so planner windows cross
// Read boundaries.
type testSource struct {
	rest []uint64
	bite int
}

func (s *testSource) Read(ctx context.Context, dst []uint64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(s.rest) == 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if n > s.bite {
		n = s.bite
	}
	n = copy(dst[:n], s.rest)
	s.rest = s.rest[n:]
	if len(s.rest) == 0 {
		return n, io.EOF
	}
	return n, nil
}

func plannerEngine(t *testing.T, entries uint64, shards int, seed int64) *Engine {
	t.Helper()
	return payloadEngine(t, shards, entries, 16, seed)
}

// TestPlannerFullWindowMatchesPreprocess: a Planner with Window = 0 must
// emit exactly one window whose plan is identical (bins, members, leaves)
// to the one-shot Engine.Preprocess — the seed contract behind the
// streaming-vs-oneshot byte-identity pin.
func TestPlannerFullWindowMatchesPreprocess(t *testing.T) {
	const entries = 1 << 9
	for _, shards := range []int{1, 3} {
		e := plannerEngine(t, entries, shards, 99)
		stream := trace.PermutationEpochs(trace.NewRNG(5), entries, 2000)
		want, err := e.Preprocess(stream, 4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := e.NewPlanner(&testSource{rest: stream, bite: 333}, PlannerConfig{S: 4, Window: 0, Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		ch, err := p.Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wins []PlannedWindow
		for w := range ch {
			wins = append(wins, w)
		}
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		if len(wins) != 1 {
			t.Fatalf("shards=%d: got %d windows, want 1", shards, len(wins))
		}
		got := wins[0].Plan
		if got.Bins() != want.Bins() || got.UniqueBlocks() != want.UniqueBlocks() {
			t.Fatalf("shards=%d: plan shape diverges: %d/%d bins, %d/%d blocks",
				shards, got.Bins(), want.Bins(), got.UniqueBlocks(), want.UniqueBlocks())
		}
		for s := 0; s < shards; s++ {
			gp, wp := got.ShardPlan(s), want.ShardPlan(s)
			if gp.Len() != wp.Len() {
				t.Fatalf("shard %d: %d bins vs %d", s, gp.Len(), wp.Len())
			}
			for i := 0; i < gp.Len(); i++ {
				gb, wb := gp.Bin(i), wp.Bin(i)
				if gb.Leaf != wb.Leaf || len(gb.Blocks) != len(wb.Blocks) {
					t.Fatalf("shard %d bin %d diverges", s, i)
				}
				for j := range gb.Blocks {
					if gb.Blocks[j] != wb.Blocks[j] {
						t.Fatalf("shard %d bin %d member %d diverges", s, i, j)
					}
				}
			}
		}
	}
}

// TestPlannerWindowing checks window boundaries and access accounting when
// the source delivers in bites that do not divide the window size.
func TestPlannerWindowing(t *testing.T) {
	const entries = 256
	e := plannerEngine(t, entries, 2, 7)
	stream := trace.PermutationEpochs(trace.NewRNG(6), entries, 1000)
	p, err := e.NewPlanner(&testSource{rest: stream, bite: 97}, PlannerConfig{S: 4, Window: 300, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var total, windows int
	for w := range ch {
		if w.Index != windows {
			t.Errorf("window %d has index %d", windows, w.Index)
		}
		if w.Accesses > 300 {
			t.Errorf("window %d spans %d accesses, cap 300", w.Index, w.Accesses)
		}
		total += w.Accesses
		windows++
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if total != len(stream) {
		t.Errorf("windows cover %d accesses, stream has %d", total, len(stream))
	}
	if want := (len(stream) + 299) / 300; windows != want {
		t.Errorf("got %d windows, want %d", windows, want)
	}
}

// TestPlannerCancelWithFullQueue cancels while the planner is blocked
// sending on a full queue: the channel must close promptly with
// Err() == context.Canceled.
func TestPlannerCancelWithFullQueue(t *testing.T) {
	const entries = 256
	e := plannerEngine(t, entries, 1, 3)
	stream := trace.PermutationEpochs(trace.NewRNG(8), entries, 4096)
	p, err := e.NewPlanner(&testSource{rest: stream, bite: 1 << 20}, PlannerConfig{S: 4, Window: 64, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := p.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	<-ch // let it fill the queue and block on the next send
	time.Sleep(10 * time.Millisecond)
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if err := p.Err(); !errors.Is(err, context.Canceled) {
					t.Fatalf("Err() = %v, want context.Canceled", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("planner did not drain after cancel")
		}
	}
}

// TestPlannerRejectsBadInput pins id validation and source errors.
func TestPlannerRejectsBadInput(t *testing.T) {
	const entries = 64
	e := plannerEngine(t, entries, 1, 2)
	p, err := e.NewPlanner(&testSource{rest: []uint64{1, 2, 9999}, bite: 8}, PlannerConfig{S: 2, Window: 0, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for range ch {
	}
	if err := p.Err(); err == nil {
		t.Error("out-of-range id accepted")
	}

	srcErr := fmt.Errorf("dataloader exploded")
	p2, err := e.NewPlanner(&errSource{err: srcErr}, PlannerConfig{S: 2, Window: 0, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := p2.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for range ch2 {
	}
	if err := p2.Err(); !errors.Is(err, srcErr) {
		t.Errorf("Err() = %v, want wrapped %v", err, srcErr)
	}

	if _, err := e.NewPlanner(nil, PlannerConfig{S: 2, Depth: 1}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := e.NewPlanner(&errSource{}, PlannerConfig{S: 0, Depth: 1}); err == nil {
		t.Error("S=0 accepted")
	}
	if _, err := e.NewPlanner(&errSource{}, PlannerConfig{S: 4, Window: 2, Depth: 1}); err == nil {
		t.Error("Window < S accepted")
	}
	if _, err := e.NewPlanner(&errSource{}, PlannerConfig{S: 4, Depth: 0}); err == nil {
		t.Error("Depth=0 accepted")
	}
}

type errSource struct{ err error }

func (s *errSource) Read(ctx context.Context, dst []uint64) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	return 0, io.EOF
}
