package shard

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/oram"
)

// fanOut runs f(s) for every shard, one worker goroutine per shard, and
// returns the lowest-shard error. The single-shard case runs inline on the
// calling goroutine, so a 1-shard engine consumes randomness and advances
// clocks in exactly the order the unsharded engine would — the property
// behind the byte-identical Shards=1 guarantee.
//
// Shards never share mutable state (each worker touches only its own
// client, store and meter), so no locking is needed beyond the join.
func (e *Engine) fanOut(f func(shard int) error) error {
	if e.n == 1 {
		return f(0)
	}
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	wg.Add(e.n)
	for s := 0; s < e.n; s++ {
		go func(s int) {
			defer wg.Done()
			errs[s] = f(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOutLanes is fanOut restricted to the shards sel marks true — the
// execution primitive of per-shard re-placement catch-up, where only the
// re-placed lanes replay their accesses while healthy lanes' state stays
// untouched. A single selected lane runs inline (same determinism argument
// as fanOut's 1-shard case); zero selected lanes is a no-op.
func (e *Engine) fanOutLanes(sel []bool, f func(shard int) error) error {
	if len(sel) != e.n {
		return fmt.Errorf("shard: lane selector has %d entries, engine has %d shards", len(sel), e.n)
	}
	picked := make([]int, 0, e.n)
	for s, on := range sel {
		if on {
			picked = append(picked, s)
		}
	}
	switch len(picked) {
	case 0:
		return nil
	case 1:
		return f(picked[0])
	}
	errs := make([]error, len(picked))
	var wg sync.WaitGroup
	wg.Add(len(picked))
	for k, s := range picked {
		go func(k, s int) {
			defer wg.Done()
			errs[k] = f(s)
		}(k, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates the whole engine's counters. Additive quantities
// (accesses, path I/O, traffic, stash occupancy, position-map bytes) are
// summed across shards; SimTime is the maximum over the per-shard meters,
// because the shards model independent memory channels running in
// parallel — elapsed time is the slowest lane, not the sum.
type Stats struct {
	Access      oram.AccessStats
	Counters    oram.Counters
	StashLen    int
	StashPeak   int
	ServerBytes int64
	PosBytes    int64
	SimTime     time.Duration
	// Tier sums the memory-tier counters of tiered (disk-backed) stores;
	// all-zero for pure in-memory engines.
	Tier oram.TierStats
}

// Stats sums the per-shard snapshots (see type Stats for the SimTime
// semantics).
func (e *Engine) Stats() Stats {
	var out Stats
	for _, sub := range e.subs {
		st := sub.Client.Stats()
		out.Access.Accesses += st.Accesses
		out.Access.StashHits += st.StashHits
		out.Access.PathReads += st.PathReads
		out.Access.PathWrites += st.PathWrites
		out.Access.DummyReads += st.DummyReads
		out.Access.Remaps += st.Remaps
		out.StashLen += sub.Client.Stash().Len()
		out.StashPeak += sub.Client.Stash().Peak()
		out.ServerBytes += sub.Client.Geometry().ServerBytes()
		out.PosBytes += sub.Client.PosMap().Bytes()
		if sub.Store != nil {
			c := sub.Store.Counters()
			out.Counters.BucketReads += c.BucketReads
			out.Counters.BucketWrites += c.BucketWrites
			out.Counters.SlotReads += c.SlotReads
			out.Counters.SlotWrites += c.SlotWrites
			out.Counters.BytesRead += c.BytesRead
			out.Counters.BytesWritten += c.BytesWritten
			out.Tier = out.Tier.Add(sub.Store.TierStats())
		}
		if sub.Meter != nil && sub.Meter.Now() > out.SimTime {
			out.SimTime = sub.Meter.Now()
		}
	}
	return out
}

// ResetStats zeroes every shard's counters, stash peaks and meters.
func (e *Engine) ResetStats() {
	for _, sub := range e.subs {
		sub.Client.ResetStats()
		sub.Client.Stash().ResetPeak()
		if sub.Store != nil {
			sub.Store.ResetCounters()
			sub.Store.ResetTierStats()
		}
		if sub.Meter != nil {
			sub.Meter.Reset()
		}
	}
}
