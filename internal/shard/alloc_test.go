package shard

import (
	"testing"

	"repro/internal/oram"
	"repro/internal/trace"
)

// metaEngine builds an N-shard engine over metadata-only stores — the
// configuration the zero-allocation budget applies to.
func metaEngine(t testing.TB, n int, entries uint64, seed int64) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:  n,
		Entries: entries,
		Seed:    seed,
		Build: func(s int, per uint64, sd int64) (Sub, error) {
			g, err := oram.NewGeometry(oram.GeometryConfig{
				LeafBits: oram.LeafBitsFor(per), LeafZ: 4,
			})
			if err != nil {
				return Sub{}, err
			}
			cs := oram.NewCountingStore(oram.NewMetaStore(g), nil)
			client, err := oram.NewClient(oram.ClientConfig{
				Store: cs, Rand: trace.NewRNG(sd), Evict: oram.PaperEvict,
				StashHits: true, Blocks: per,
			})
			if err != nil {
				return Sub{}, err
			}
			return Sub{Client: client, Store: cs}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedReadAllocs: the allocation-free hot path must hold under
// Options.Shards — Engine.Read routes inline to the owning shard's client,
// whose slab stash, planner and buffers are per-shard, so a steady-state
// metadata-only read allocates nothing for any shard count.
func TestShardedReadAllocs(t *testing.T) {
	for _, shards := range []int{1, 4} {
		const entries = 1 << 12
		e := metaEngine(t, shards, entries, 9)
		if err := e.Load(entries, nil); err != nil {
			t.Fatal(err)
		}
		rng := trace.NewRNG(10)
		for i := 0; i < 4096; i++ {
			if _, err := e.Read(uint64(rng.Int63n(entries))); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(500, func() {
			if _, err := e.Read(uint64(rng.Int63n(entries))); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("shards=%d: Read allocates %.2f objects/op in steady state, want 0", shards, allocs)
		}
	}
}
