package shard

import "repro/internal/oram"

// Look-ahead prefetch: the §IV-B plan is a complete oracle of the paths a
// window will touch (every bin carries its pre-assigned leaf), so the
// moment a window is planned its paths can start streaming from a tiered
// store's disk arena into memory — the planner runs a window (or more)
// ahead of the session, which is exactly the lead time a prefetcher
// needs. prefetchPlan hands each shard's bin leaves to its Sub.Prefetch
// hook; the hint is fire-and-forget and the store may drop it, so this
// costs one leaf-slice copy per shard per window and has no effect on
// correctness or on the client-visible access sequence (DESIGN.md
// invariant #14).
//
// Hints fire from two sites: Planner.run (right after preprocessWindow —
// the lead-time path) and Engine.NewSession (catch-up for plans built
// without a planner, e.g. one-shot Preprocess). Duplicate hints are
// harmless: the store skips already-resident buckets.
func (e *Engine) prefetchPlan(p *Plan) {
	if p == nil || p.n != e.n {
		return
	}
	for s := 0; s < e.n; s++ {
		pf := e.subs[s].Prefetch
		if pf == nil {
			continue
		}
		sp := p.plans[s]
		n := sp.Len()
		if n == 0 {
			continue
		}
		leaves := make([]oram.Leaf, n)
		for i := 0; i < n; i++ {
			leaves[i] = sp.Bin(i).Leaf
		}
		pf.PrefetchPaths(leaves)
	}
}
