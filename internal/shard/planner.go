package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Source is a pull-based stream of upcoming embedding indices — the
// incremental form of the []uint64 access stream the one-shot Preprocess
// takes. Read fills dst with the next indices of the training order and
// returns how many it wrote; it returns io.EOF (possibly alongside n > 0)
// when the stream ends. Read must block until it can deliver at least one
// index, the stream ends, or ctx is cancelled; blocking sources (channels,
// sockets, dataset loaders) must honour ctx and return ctx.Err().
//
// The public package wraps this as laoram.IndexSource, with adapters for
// slices, synthetic traces and channels.
type Source interface {
	Read(ctx context.Context, dst []uint64) (n int, err error)
}

// PlannerConfig drives the incremental preprocessor.
type PlannerConfig struct {
	// S is the superblock size (§IV-B).
	S int
	// Window is the look-ahead horizon in global accesses per planning
	// window. 0 means one window spanning the entire stream — the
	// one-shot Preprocess shape, byte-identical to it by construction.
	// A positive Window must be >= S.
	Window int
	// Depth is the bounded plan queue: how many preprocessed windows may
	// wait ahead of the consumer (>= 1). Depth 2 double-buffers — the
	// planner works on window k+1 while the trainer executes window k.
	Depth int
	// StartWindow offsets the absolute window index of the first planned
	// window. A recovery that rewinds the source to the boundary of window
	// B resumes planning with StartWindow = B, so every window keeps the
	// absolute index — and therefore the deterministic plan seed
	// planSeed(s, win) — it had in the unfaulted run.
	StartWindow int
}

func (c PlannerConfig) validate() error {
	if c.S < 1 {
		return fmt.Errorf("shard: planner S must be >= 1, got %d", c.S)
	}
	if c.Window < 0 {
		return fmt.Errorf("shard: planner Window must be >= 0, got %d", c.Window)
	}
	if c.Window > 0 && c.Window < c.S {
		return fmt.Errorf("shard: planner Window %d must be >= S %d", c.Window, c.S)
	}
	if c.Depth < 1 {
		return fmt.Errorf("shard: planner Depth must be >= 1, got %d", c.Depth)
	}
	if c.StartWindow < 0 {
		return fmt.Errorf("shard: planner StartWindow must be >= 0, got %d", c.StartWindow)
	}
	return nil
}

// PlannedWindow is one preprocessed look-ahead window: a sharded Plan over
// the window's slice of the stream, ready for a Session.
type PlannedWindow struct {
	// Index is the window's position in stream order (0-based).
	Index int
	// Accesses is how many stream indices the window covers.
	Accesses int
	// Plan is the per-shard superblock plan of the window.
	Plan *Plan
	// PlanTime is the wall time spent scanning and binning the window
	// (the paper's stage-1 cost; it overlaps stage-2 execution).
	PlanTime time.Duration
}

// Planner is the incremental §IV-B preprocessor: it scans a Source window
// by window and emits per-shard Plans on a bounded queue, so planning of
// window k+1 overlaps execution of window k (the paper's §VIII-A two-stage
// pipeline, sharded). Plan building only reads engine geometry — never
// client state — so it is safe to run concurrently with Session execution
// on the same Engine.
//
// Window w of shard s draws its bin paths from the deterministic seed
// planSeed(s, w); window 0 uses exactly the one-shot Preprocess seeds, so
// a Planner with Window = 0 reproduces Engine.Preprocess byte-identically.
type Planner struct {
	e   *Engine
	src Source
	cfg PlannerConfig

	ch      chan PlannedWindow
	started bool
	err     error // written before ch closes; read after it closes

	// enqStalledNs accumulates the time the planning goroutine spent
	// blocked handing finished windows to the full queue — backpressure,
	// i.e. training (not planning) is the pipeline bottleneck. Atomic
	// because the consumer may read it (via Stats) while planning runs.
	enqStalledNs atomic.Int64
}

// PlannerStats are the planner-side pipeline counters.
type PlannerStats struct {
	// EnqueueStalled is how long the planner was blocked on the full
	// window queue: ≈ 0 when the trainer keeps up with planning, large
	// when planning runs far ahead and Depth is the limiter (the healthy
	// pipeline regime — backpressure on the cheap stage).
	EnqueueStalled time.Duration
}

// Stats returns a snapshot of the planner-side counters. Safe to call at
// any time; for totals, read it after the window channel has closed.
func (p *Planner) Stats() PlannerStats {
	return PlannerStats{EnqueueStalled: time.Duration(p.enqStalledNs.Load())}
}

// NewPlanner validates cfg and prepares a Planner over src.
func (e *Engine) NewPlanner(src Source, cfg PlannerConfig) (*Planner, error) {
	if src == nil {
		return nil, fmt.Errorf("shard: planner Source is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Planner{e: e, src: src, cfg: cfg, ch: make(chan PlannedWindow, cfg.Depth)}, nil
}

// Start launches the planning goroutine and returns the bounded window
// queue. The channel closes when the stream ends, the context is cancelled
// or planning fails; call Err afterwards to distinguish. Start may be
// called once.
func (p *Planner) Start(ctx context.Context) (<-chan PlannedWindow, error) {
	if p.started {
		return nil, fmt.Errorf("shard: planner already started")
	}
	p.started = true
	go p.run(ctx)
	return p.ch, nil
}

// Err reports why the window queue closed: nil at end of stream, ctx.Err()
// after cancellation, or the scan/source error. Valid only after the
// channel returned by Start has closed.
func (p *Planner) Err() error { return p.err }

// readChunk is the Source fill granularity when windows are unbounded.
const readChunk = 1 << 16

// run scans the source window by window. The window buffer is reused: the
// superblock scan copies ids into its own bin storage, so nothing built
// from one window aliases the buffer by the time the next fill starts.
func (p *Planner) run(ctx context.Context) {
	defer close(p.ch)
	var buf []uint64
	if p.cfg.Window > 0 {
		buf = make([]uint64, 0, p.cfg.Window)
	}
	for win := p.cfg.StartWindow; ; win++ {
		ids, eof, err := p.fillWindow(ctx, buf[:0])
		if err != nil {
			p.err = err
			return
		}
		if len(ids) > 0 {
			start := time.Now()
			for _, id := range ids {
				if err := p.e.check(id); err != nil {
					p.err = fmt.Errorf("shard: planner window %d: %w", win, err)
					return
				}
			}
			plan, err := p.e.preprocessWindow(ids, p.cfg.S, win)
			if err != nil {
				p.err = fmt.Errorf("shard: planner window %d: %w", win, err)
				return
			}
			// The plan is the prefetch oracle: hint tiered stores now,
			// while the trainer is still executing earlier windows.
			p.e.prefetchPlan(plan)
			w := PlannedWindow{Index: win, Accesses: len(ids), Plan: plan, PlanTime: time.Since(start)}
			enqStart := time.Now()
			select {
			case p.ch <- w:
			case <-ctx.Done():
				p.err = ctx.Err()
				return
			}
			p.enqStalledNs.Add(time.Since(enqStart).Nanoseconds())
		}
		buf = ids
		if eof {
			return
		}
	}
}

// fillWindow reads up to one window of indices into dst (growing it for
// unbounded windows), reporting whether the stream ended.
func (p *Planner) fillWindow(ctx context.Context, dst []uint64) (ids []uint64, eof bool, err error) {
	limit := p.cfg.Window
	for limit == 0 || len(dst) < limit {
		want := readChunk
		if limit > 0 {
			want = limit - len(dst)
		}
		if cap(dst) < len(dst)+want {
			grown := make([]uint64, len(dst), max(2*cap(dst), len(dst)+want))
			copy(grown, dst)
			dst = grown
		}
		fill := dst[len(dst) : len(dst)+want]
		n, err := p.src.Read(ctx, fill)
		dst = dst[:len(dst)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				return dst, true, nil
			}
			return dst, false, fmt.Errorf("shard: planner source: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return dst, false, err
		}
	}
	return dst, false, nil
}
