package shard

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/oram"
)

// Visit is invoked for each block of a bin while it is resident in trusted
// memory; ids are global. Returning non-nil replaces the payload. During
// Run/RunBatched, visit is called concurrently from different shard
// lanes — never concurrently for the same id (a block lives in exactly one
// shard) — so implementations need per-lane scratch or no shared state;
// NewVisit builds one visitor per lane for that purpose.
type Visit func(id uint64, payload []byte) []byte

// NewVisit returns a fresh Visit per shard lane, letting callers keep
// mutable scratch (decode buffers, optimiser state) lane-local during
// concurrent execution. Either may be nil.
type NewVisit func(shard int) Visit

// Session executes a sharded Plan: one core.LAORAM lane per shard, each
// consuming its shard's bins in plan order. Step/StepBatch serve lanes
// round-robin on the calling goroutine; Run/RunBatched drive every lane
// concurrently.
type Session struct {
	e   *Engine
	las []*core.LAORAM
	rr  int // next lane Step considers (round-robin)
}

// NewSession builds the per-shard LAORAM lanes for plan p.
func (e *Engine) NewSession(p *Plan) (*Session, error) {
	if p == nil {
		return nil, fmt.Errorf("shard: nil plan")
	}
	if p.n != e.n {
		return nil, fmt.Errorf("shard: plan built for %d shards, engine has %d", p.n, e.n)
	}
	s := &Session{e: e, las: make([]*core.LAORAM, e.n)}
	for i := 0; i < e.n; i++ {
		la, err := core.New(core.Config{Base: e.subs[i].Client, Plan: p.plans[i]})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.las[i] = la
	}
	// Catch-up prefetch hint for plans that skipped the planner (one-shot
	// Preprocess); already-hinted windows dedupe inside the store.
	e.prefetchPlan(p)
	return s, nil
}

// wrap translates a global-ID visitor to shard i's local-ID space.
func (s *Session) wrap(i int, v Visit) core.Visit {
	if v == nil {
		return nil
	}
	n := s.e.n
	return func(local oram.BlockID, payload []byte) []byte {
		return v(GlobalID(uint64(local), i, n), payload)
	}
}

// Done reports whether every lane's plan is exhausted.
func (s *Session) Done() bool {
	for _, la := range s.las {
		if !la.Done() {
			return false
		}
	}
	return true
}

// next returns the round-robin next lane with work, or -1 when done.
func (s *Session) next() int {
	for k := 0; k < len(s.las); k++ {
		i := (s.rr + k) % len(s.las)
		if !s.las[i].Done() {
			s.rr = (i + 1) % len(s.las)
			return i
		}
	}
	return -1
}

// Step executes one superblock bin on the next lane that has work
// (round-robin across shards, inline on the calling goroutine). Returns
// false when every lane is exhausted.
func (s *Session) Step(v Visit) (bool, error) {
	i := s.next()
	if i < 0 {
		return false, nil
	}
	if _, err := s.las[i].StepBin(s.wrap(i, v)); err != nil {
		return false, fmt.Errorf("shard %d: %w", i, err)
	}
	return true, nil
}

// StepBatch executes up to k bins in one batched round trip on the next
// lane with work, returning the number of bins executed (0 when done).
func (s *Session) StepBatch(k int, v Visit) (int, error) {
	i := s.next()
	if i < 0 {
		return 0, nil
	}
	done, err := s.las[i].StepBatch(k, s.wrap(i, v))
	if err != nil {
		return done, fmt.Errorf("shard %d: %w", i, err)
	}
	return done, nil
}

// Run drives every lane to completion concurrently. nv (may be nil) builds
// one visitor per lane; use it to keep scratch state lane-local.
func (s *Session) Run(nv NewVisit) error {
	return s.RunContext(context.Background(), nv)
}

// RunContext is Run with cooperative cancellation: every lane checks ctx at
// each bin boundary, so a cancelled context drains all shard workers (the
// fan-out always joins) and returns ctx.Err(). The check consumes no
// randomness — an uncancelled run is byte-identical to Run.
func (s *Session) RunContext(ctx context.Context, nv NewVisit) error {
	return s.e.fanOut(func(i int) error {
		var v Visit
		if nv != nil {
			v = nv(i)
		}
		if err := s.las[i].RunContext(ctx, s.wrap(i, v)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		return nil
	})
}

// RunBatched drives every lane to completion concurrently, k bins per
// server round trip (§IV-A's per-training-batch fetch within each shard).
func (s *Session) RunBatched(k int, nv NewVisit) error {
	return s.RunBatchedContext(context.Background(), k, nv)
}

// RunBatchedContext is RunBatched with cooperative cancellation (ctx is
// checked before every batch round trip in every lane).
func (s *Session) RunBatchedContext(ctx context.Context, k int, nv NewVisit) error {
	return s.e.fanOut(func(i int) error {
		var v Visit
		if nv != nil {
			v = nv(i)
		}
		if err := s.las[i].RunBatchedContext(ctx, k, s.wrap(i, v)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		return nil
	})
}

// RunLanesContext drives only the lanes sel marks true to completion,
// leaving the other lanes' plans untouched — the re-placement catch-up
// path: after a dead node's shards were restored from the last checkpoint
// onto survivors, just those lanes re-run the windows since the boundary
// while healthy lanes keep their live state. Each selected lane executes
// exactly as it would under RunContext (same bin order, same randomness),
// so a caught-up lane is byte-identical to one that never failed.
func (s *Session) RunLanesContext(ctx context.Context, sel []bool, nv NewVisit) error {
	return s.e.fanOutLanes(sel, func(i int) error {
		var v Visit
		if nv != nil {
			v = nv(i)
		}
		if err := s.las[i].RunContext(ctx, s.wrap(i, v)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		return nil
	})
}

// RunBatchedLanesContext is RunLanesContext with k bins per server round
// trip — the selected-lane mirror of RunBatchedContext, so catch-up can
// reproduce a batched run's exact access pattern.
func (s *Session) RunBatchedLanesContext(ctx context.Context, k int, sel []bool, nv NewVisit) error {
	return s.e.fanOutLanes(sel, func(i int) error {
		var v Visit
		if nv != nil {
			v = nv(i)
		}
		if err := s.las[i].RunBatchedContext(ctx, k, s.wrap(i, v)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		return nil
	})
}

// Lane exposes shard i's LAORAM executor (stats, manual stepping).
func (s *Session) Lane(i int) *core.LAORAM { return s.las[i] }

// Stats sums the per-lane LAORAM counters (base AccessStats included).
func (s *Session) Stats() core.Stats {
	var out core.Stats
	for _, la := range s.las {
		st := la.Stats()
		out.Accesses += st.Accesses
		out.StashHits += st.StashHits
		out.PathReads += st.PathReads
		out.PathWrites += st.PathWrites
		out.DummyReads += st.DummyReads
		out.Remaps += st.Remaps
		out.Bins += st.Bins
		out.ColdPathReads += st.ColdPathReads
		out.LookaheadRemaps += st.LookaheadRemaps
		out.UniformRemaps += st.UniformRemaps
	}
	return out
}
