package memsim

import (
	"testing"
	"time"
)

func TestModelValidate(t *testing.T) {
	if err := DDR4Default().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := []Model{
		{BytesPerSecond: 0},
		{BytesPerSecond: -1},
		{BytesPerSecond: 1, RequestLatency: -time.Second},
		{BytesPerSecond: 1, PerBlockCPU: -time.Second},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted: %+v", i, m)
		}
	}
}

func TestNewMeterPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMeter(Model{})
}

func TestMeterCharging(t *testing.T) {
	m := Model{
		RequestLatency: time.Microsecond,
		BytesPerSecond: 1e9, // 1 GB/s → 1 ns per byte
		PerBlockCPU:    10 * time.Nanosecond,
	}
	mt := NewMeter(m)
	if mt.Now() != 0 {
		t.Fatal("fresh meter nonzero")
	}
	if mt.Model() != m {
		t.Fatal("model not retained")
	}
	mt.OnPathRequest()
	if mt.Now() != time.Microsecond {
		t.Errorf("after request: %v", mt.Now())
	}
	mt.OnTransfer(1000)
	want := time.Microsecond + 1000*time.Nanosecond
	if mt.Now() != want {
		t.Errorf("after transfer: %v, want %v", mt.Now(), want)
	}
	mt.OnStashWork(5)
	want += 50 * time.Nanosecond
	if mt.Now() != want {
		t.Errorf("after stash work: %v, want %v", mt.Now(), want)
	}
	// Zero/negative events are no-ops.
	mt.OnTransfer(0)
	mt.OnTransfer(-5)
	mt.OnStashWork(0)
	mt.OnStashWork(-1)
	if mt.Now() != want {
		t.Errorf("no-op events advanced clock: %v", mt.Now())
	}
	mt.Advance(time.Millisecond)
	want += time.Millisecond
	if mt.Now() != want {
		t.Errorf("Advance: %v", mt.Now())
	}
	mt.Reset()
	if mt.Now() != 0 {
		t.Error("Reset failed")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Errorf("Speedup = %v, want 5", s)
	}
	if s := Speedup(time.Second, 0); s != 0 {
		t.Errorf("Speedup with zero cfg = %v, want 0", s)
	}
}

// TestBandwidthDominatedOrdering: for paper-like parameters, a fat-tree path
// (more slots) must cost more simulated time than a normal path — the
// (3Z+1)/(2(Z+1)) factor in §VIII-F comes straight from this.
func TestBandwidthDominatedOrdering(t *testing.T) {
	m := DDR4Default()
	normal := NewMeter(m)
	fat := NewMeter(m)
	const blockBytes = 128
	// Normal Z=4 path of 21 levels = 84 slots; fat 8→4 ≈ 127 slots.
	normal.OnPathRequest()
	normal.OnTransfer(84 * blockBytes)
	fat.OnPathRequest()
	fat.OnTransfer(127 * blockBytes)
	if fat.Now() <= normal.Now() {
		t.Errorf("fat path (%v) should cost more than normal (%v)", fat.Now(), normal.Now())
	}
	ratio := float64(fat.Now()-time.Microsecond) / float64(normal.Now()-time.Microsecond)
	if ratio < 1.4 || ratio > 1.6 {
		t.Errorf("bandwidth ratio = %.2f, want ≈ 127/84 = 1.51", ratio)
	}
}
