// Package memsim is the deterministic memory-system timing model that
// substitutes for the paper's hardware testbed (Xeon E-2174G + DDR4 server
// storage, RTX 1080 Ti client; §VII). Every quantity the paper's figures
// report is a ratio of traffic and eviction counts, so a model that charges
// per-request latency plus bytes/bandwidth reproduces the comparison
// structure (see DESIGN.md, "Substitutions").
//
// The model is intentionally simple and fully deterministic: simulated time
// advances only through explicit charges. Speedups are computed as
// simTime(baseline)/simTime(config), mirroring Fig. 7.
package memsim

import (
	"fmt"
	"time"
)

// Model holds the cost parameters of the simulated memory system.
type Model struct {
	// RequestLatency is charged once per path-granularity round trip
	// (client → server storage → client): request dispatch, DRAM row
	// activation, interconnect overhead.
	RequestLatency time.Duration
	// BytesPerSecond is the sustained server-storage bandwidth for bulk
	// path transfers.
	BytesPerSecond float64
	// PerBlockCPU is charged per real block of client-side metadata work
	// (stash insert/scan share, position-map update).
	PerBlockCPU time.Duration
}

// DDR4Default approximates the paper's testbed: ~19.2 GB/s DDR4-2400
// sustained bandwidth, ~1 µs per request round trip (DRAM + kernel/driver
// overhead at path granularity), 20 ns of client bookkeeping per block.
// Absolute values are not claims — only ratios are reported.
func DDR4Default() Model {
	return Model{
		RequestLatency: time.Microsecond,
		BytesPerSecond: 19.2e9,
		PerBlockCPU:    20 * time.Nanosecond,
	}
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.BytesPerSecond <= 0 {
		return fmt.Errorf("memsim: BytesPerSecond must be positive, got %g", m.BytesPerSecond)
	}
	if m.RequestLatency < 0 || m.PerBlockCPU < 0 {
		return fmt.Errorf("memsim: negative latency parameters")
	}
	return nil
}

// Meter accumulates simulated time under a Model. It implements both
// oram.Ticker (byte transfers) and oram.Timer (request/stash events) so it
// plugs into the CountingStore and the ORAM clients without those packages
// importing memsim.
type Meter struct {
	model Model
	now   time.Duration
}

// NewMeter builds a meter; panics on an invalid model (programmer error).
func NewMeter(model Model) *Meter {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Meter{model: model}
}

// Model returns the cost parameters.
func (mt *Meter) Model() Model { return mt.model }

// Now returns accumulated simulated time.
func (mt *Meter) Now() time.Duration { return mt.now }

// Reset zeroes the simulated clock.
func (mt *Meter) Reset() { mt.now = 0 }

// Advance adds an explicit duration (e.g. preprocessing CPU time measured
// elsewhere).
func (mt *Meter) Advance(d time.Duration) { mt.now += d }

// OnTransfer charges bandwidth time for a bulk transfer of n bytes.
// Implements oram.Ticker.
func (mt *Meter) OnTransfer(bytes int) {
	if bytes <= 0 {
		return
	}
	sec := float64(bytes) / mt.model.BytesPerSecond
	mt.now += time.Duration(sec * float64(time.Second))
}

// OnPathRequest charges one request round-trip latency. Implements
// oram.Timer.
func (mt *Meter) OnPathRequest() { mt.now += mt.model.RequestLatency }

// OnStashWork charges client CPU for handling n blocks. Implements
// oram.Timer.
func (mt *Meter) OnStashWork(blocks int) {
	if blocks <= 0 {
		return
	}
	mt.now += time.Duration(blocks) * mt.model.PerBlockCPU
}

// Speedup returns base/this as a ratio of simulated times; it is the
// paper's Fig. 7 metric.
func Speedup(base, cfg time.Duration) float64 {
	if cfg <= 0 {
		return 0
	}
	return float64(base) / float64(cfg)
}
