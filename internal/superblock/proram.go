package superblock

import (
	"fmt"

	"repro/internal/oram"
)

// StaticORAM is the PrORAM static-superblock baseline (§II-D): every n
// consecutive block IDs form one permanent superblock sharing a path, on
// the premise that spatial locality exists across nearby blocks.
//
// It composes the PathORAM primitives: an access reads the group's shared
// path once, serves the requested block, remaps the whole group to one
// fresh uniform leaf, and writes the path back.
type StaticORAM struct {
	base *oram.Client
	s    int
	// memberScratch backs members() across accesses (valid until the next
	// call — every caller consumes it within one access).
	memberScratch []oram.BlockID
}

// NewStaticORAM wraps a PathORAM client with static superblocks of size s.
// Call LoadGrouped (not Client.Load) so groups start co-located.
func NewStaticORAM(base *oram.Client, s int) (*StaticORAM, error) {
	if s < 1 {
		return nil, fmt.Errorf("superblock: static size must be >= 1, got %d", s)
	}
	return &StaticORAM{base: base, s: s}, nil
}

// Base returns the wrapped PathORAM client.
func (so *StaticORAM) Base() *oram.Client { return so.base }

// GroupOf returns the superblock index of a block.
func (so *StaticORAM) GroupOf(id oram.BlockID) uint64 { return uint64(id) / uint64(so.s) }

// members returns the block IDs of a group, clipped to the table size. The
// slice aliases reusable scratch, valid until the next call.
func (so *StaticORAM) members(group uint64) []oram.BlockID {
	lo := group * uint64(so.s)
	hi := lo + uint64(so.s)
	if max := so.base.PosMap().Len(); hi > max {
		hi = max
	}
	so.memberScratch = so.memberScratch[:0]
	for i := lo; i < hi; i++ {
		so.memberScratch = append(so.memberScratch, oram.BlockID(i))
	}
	return so.memberScratch
}

// LoadGrouped populates the tree with n blocks, each group placed on one
// shared random leaf — the static-superblock invariant.
func (so *StaticORAM) LoadGrouped(n uint64, payload func(oram.BlockID) []byte) error {
	groupLeaf := make(map[uint64]oram.Leaf)
	leafOf := func(id oram.BlockID) oram.Leaf {
		grp := so.GroupOf(id)
		l, ok := groupLeaf[grp]
		if !ok {
			l = so.base.RandomLeaf()
			groupLeaf[grp] = l
		}
		return l
	}
	return so.base.Load(n, leafOf, payload)
}

// AccessGroup fetches the entire superblock containing id with a single
// path read, calls visit for every member while the group is resident in
// trusted memory, remaps the group to one fresh uniform leaf, and writes
// the path back. visit may return a replacement payload (or nil to keep).
// This is the primitive PrORAM's n/S gain comes from: callers that consume
// several members per fetch (a client cache, a batch) amortise the path.
func (so *StaticORAM) AccessGroup(id oram.BlockID, visit func(m oram.BlockID, payload []byte) []byte) error {
	if uint64(id) >= so.base.PosMap().Len() {
		return fmt.Errorf("superblock: block %d out of range", id)
	}
	st := so.base.StatsMut()
	members := so.members(so.GroupOf(id))

	// All members share a leaf (the static invariant); members already in
	// the stash carry the group's pending leaf.
	leaf := oram.NoLeaf
	for _, m := range members {
		if !so.base.Stash().Contains(m) {
			leaf = so.base.PosMap().Get(m)
			break
		}
	}
	if leaf != oram.NoLeaf {
		if err := so.base.ReadPath(leaf); err != nil {
			return err
		}
		st.PathReads++
	} else {
		st.StashHits++
	}
	// Remap the whole group to one fresh uniform leaf.
	newLeaf := so.base.RandomLeaf()
	for _, m := range members {
		if !so.base.Stash().Contains(m) {
			return fmt.Errorf("superblock: member %d missing from shared path %d", m, leaf)
		}
		so.base.PosMap().Set(m, newLeaf)
		so.base.Stash().SetLeaf(m, newLeaf)
		st.Remaps++
	}
	if visit != nil {
		for _, m := range members {
			p, _ := so.base.Stash().Payload(m)
			if np := visit(m, p); np != nil {
				so.base.Stash().SetPayload(m, np)
			}
		}
	}
	if leaf != oram.NoLeaf {
		if err := so.base.WriteBackPath(leaf); err != nil {
			return err
		}
		st.PathWrites++
	}
	if _, err := so.base.MaybeEvict(); err != nil {
		return err
	}
	return nil
}

// Access serves one block through its superblock: one path read covers the
// whole group, the group is remapped to a single fresh leaf, one path
// write-back follows.
func (so *StaticORAM) Access(op oram.Op, id oram.BlockID, data []byte) ([]byte, error) {
	st := so.base.StatsMut()
	st.Accesses++
	var out []byte
	var serveErr error
	err := so.AccessGroup(id, func(m oram.BlockID, payload []byte) []byte {
		if m != id {
			return nil
		}
		switch op {
		case oram.OpRead:
			if payload != nil {
				out = make([]byte, len(payload))
				copy(out, payload)
			}
			return nil
		case oram.OpWrite:
			cp := make([]byte, len(data))
			copy(cp, data)
			return cp
		default:
			serveErr = fmt.Errorf("superblock: unknown op %v", op)
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, serveErr
}

// DynamicConfig tunes the PrORAM dynamic-superblock baseline.
type DynamicConfig struct {
	// S is the (maximum) superblock size: aligned groups of S consecutive
	// IDs are merge candidates.
	S int
	// MergeThreshold is the locality-counter value at which a group is
	// promoted to a superblock.
	MergeThreshold int
	// SplitThreshold is the counter value at which a superblock is broken
	// back into individual blocks.
	SplitThreshold int
}

// DefaultDynamicConfig mirrors PrORAM's spirit: promote after a short run
// of spatially adjacent accesses, demote when locality disappears.
func DefaultDynamicConfig(s int) DynamicConfig {
	return DynamicConfig{S: s, MergeThreshold: 3, SplitThreshold: 0}
}

// DynamicORAM is the PrORAM dynamic-superblock baseline (§II-D): a spatial
// locality counter per aligned group of S consecutive blocks; consecutive
// accesses within the same group raise the counter, strays lower it; above
// MergeThreshold the group is fused into a superblock, below SplitThreshold
// it is dissolved.
//
// On the paper's embedding workloads the counters never climb (Fig. 2:
// "most accesses are random"), so DynamicORAM degenerates to PathORAM —
// exactly the observation that motivates LAORAM ("In the absence of good
// predictability, PrORAM performs similarly to the PathORAM").
type DynamicORAM struct {
	base    *oram.Client
	cfg     DynamicConfig
	counter map[uint64]int
	merged  map[uint64]bool
	last    uint64 // group of the previous access
	primed  bool

	// scratch reused across superblock accesses
	memberScratch []oram.BlockID
	readLeaves    []oram.Leaf
	leafSeen      map[oram.Leaf]bool

	// MergeEvents / SplitEvents expose promotion activity to tests and
	// the harness.
	MergeEvents uint64
	SplitEvents uint64
}

// NewDynamicORAM wraps a PathORAM client with dynamic superblocks.
func NewDynamicORAM(base *oram.Client, cfg DynamicConfig) (*DynamicORAM, error) {
	if cfg.S < 2 {
		return nil, fmt.Errorf("superblock: dynamic S must be >= 2, got %d", cfg.S)
	}
	if cfg.SplitThreshold >= cfg.MergeThreshold {
		return nil, fmt.Errorf("superblock: SplitThreshold %d must be < MergeThreshold %d", cfg.SplitThreshold, cfg.MergeThreshold)
	}
	return &DynamicORAM{
		base:     base,
		cfg:      cfg,
		counter:  make(map[uint64]int),
		merged:   make(map[uint64]bool),
		leafSeen: make(map[oram.Leaf]bool, 8),
	}, nil
}

// Base returns the wrapped PathORAM client.
func (d *DynamicORAM) Base() *oram.Client { return d.base }

// MergedGroups returns the number of groups currently fused.
func (d *DynamicORAM) MergedGroups() int { return len(d.merged) }

func (d *DynamicORAM) groupOf(id oram.BlockID) uint64 { return uint64(id) / uint64(d.cfg.S) }

func (d *DynamicORAM) members(group uint64) []oram.BlockID {
	lo := group * uint64(d.cfg.S)
	hi := lo + uint64(d.cfg.S)
	if max := d.base.PosMap().Len(); hi > max {
		hi = max
	}
	d.memberScratch = d.memberScratch[:0]
	for i := lo; i < hi; i++ {
		d.memberScratch = append(d.memberScratch, oram.BlockID(i))
	}
	return d.memberScratch
}

// Access serves one block, updating the locality counters and using a fused
// group's shared path when available.
func (d *DynamicORAM) Access(op oram.Op, id oram.BlockID, data []byte) ([]byte, error) {
	if uint64(id) >= d.base.PosMap().Len() {
		return nil, fmt.Errorf("superblock: block %d out of range", id)
	}
	g := d.groupOf(id)
	d.bumpCounters(g)

	if !d.merged[g] {
		// Plain PathORAM access for an unfused block.
		return d.base.Access(op, id, data)
	}
	return d.superblockAccess(op, g, id, data)
}

func (d *DynamicORAM) bumpCounters(g uint64) {
	if d.primed && d.last == g {
		d.counter[g]++
		if d.counter[g] >= d.cfg.MergeThreshold && !d.merged[g] {
			d.merged[g] = true
			d.MergeEvents++
		}
	} else if d.primed {
		d.counter[d.last]--
		if d.counter[d.last] <= d.cfg.SplitThreshold && d.merged[d.last] {
			delete(d.merged, d.last)
			d.SplitEvents++
		}
		if d.counter[d.last] < d.cfg.SplitThreshold {
			d.counter[d.last] = d.cfg.SplitThreshold
		}
	}
	d.last = g
	d.primed = true
}

// superblockAccess fetches every member of a fused group (their paths may
// still be scattered right after promotion), assigns all of them one fresh
// shared leaf, and writes the fetched paths back.
func (d *DynamicORAM) superblockAccess(op oram.Op, g uint64, id oram.BlockID, data []byte) ([]byte, error) {
	st := d.base.StatsMut()
	st.Accesses++
	members := d.members(g)

	d.readLeaves = d.readLeaves[:0]
	clear(d.leafSeen)
	readLeaves := d.readLeaves
	for _, m := range members {
		if d.base.Stash().Contains(m) {
			continue
		}
		l := d.base.PosMap().Get(m)
		if l == oram.NoLeaf {
			return nil, fmt.Errorf("superblock: member %d not loaded", m)
		}
		if !d.leafSeen[l] {
			d.leafSeen[l] = true
			readLeaves = append(readLeaves, l)
		}
	}
	d.readLeaves = readLeaves
	if len(readLeaves) == 0 {
		st.StashHits++
	}
	for _, l := range readLeaves {
		if err := d.base.ReadPath(l); err != nil {
			return nil, err
		}
		st.PathReads++
	}
	newLeaf := d.base.RandomLeaf()
	for _, m := range members {
		if !d.base.Stash().Contains(m) {
			return nil, fmt.Errorf("superblock: member %d missing after path reads", m)
		}
		d.base.PosMap().Set(m, newLeaf)
		d.base.Stash().SetLeaf(m, newLeaf)
		st.Remaps++
	}
	var out []byte
	switch op {
	case oram.OpRead:
		p, ok := d.base.Stash().Payload(id)
		if !ok {
			return nil, fmt.Errorf("superblock: block %d not in stash", id)
		}
		out = make([]byte, len(p))
		copy(out, p)
		if p == nil {
			out = nil
		}
	case oram.OpWrite:
		cp := make([]byte, len(data))
		copy(cp, data)
		if !d.base.Stash().SetPayload(id, cp) {
			return nil, fmt.Errorf("superblock: block %d not in stash", id)
		}
	default:
		return nil, fmt.Errorf("superblock: unknown op %v", op)
	}
	// Joint write-back: the fetched paths overlap at least at the root,
	// so they must be written as one plan (see oram.WriteBackPaths).
	if err := d.base.WriteBackPaths(readLeaves); err != nil {
		return nil, err
	}
	st.PathWrites += uint64(len(readLeaves))
	if _, err := d.base.MaybeEvict(); err != nil {
		return nil, err
	}
	return out, nil
}
