package superblock

import (
	"bytes"
	"testing"

	"repro/internal/oram"
)

// TestCachedReadIsCallerOwned audits the superblock cache for payload
// aliasing (ISSUE 3 satellite): a buffer returned by CachedStatic.Access
// must be the caller's copy — scribbling over it must change neither the
// cache entry nor what a later fetch from the ORAM returns.
func TestCachedReadIsCallerOwned(t *testing.T) {
	base, _ := newBase(t, 6, 64, 32)
	so, err := NewStaticORAM(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := so.LoadGrouped(64, func(id oram.BlockID) []byte { return u64payload(32, uint64(id)+100) }); err != nil {
		t.Fatal(err)
	}
	cs, err := NewCachedStatic(so, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := u64payload(32, 105)

	// First read installs the superblock in the cache; scribble the result.
	out, err := cs.Access(oram.OpRead, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("first read = %x, want %x", out, want)
	}
	for j := range out {
		out[j] = 0xFF
	}
	// Second read is a cache hit — it must be unaffected.
	again, err := cs.Access(oram.OpRead, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatalf("cache-hit read after caller scribble = %x, want %x", again, want)
	}
	// Evict everything back through the ORAM and re-fetch: server state
	// must be unaffected too.
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	final, err := so.Access(oram.OpRead, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, want) {
		t.Fatalf("post-flush ORAM read = %x, want %x", final, want)
	}
}
