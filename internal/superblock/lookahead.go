// Package superblock implements the superblock machinery of the paper:
// LAORAM's look-ahead preprocessor (§IV-B) and the PrORAM static/dynamic
// baselines it is compared against (§II-D).
//
// A superblock is a set of data blocks assigned to the same ORAM path, so
// one path fetch serves the whole set. LAORAM's insight is that training
// makes the future access stream known, so superblocks can be formed from
// blocks that *will* be accessed together rather than blocks that *were*.
package superblock

import (
	"fmt"
	"math/rand"

	"repro/internal/oram"
)

// Bin is one superblock produced by the preprocessor: the next S unique
// embedding indices of the upcoming training stream, plus the uniformly
// random path the whole bin is assigned (§IV-B3).
type Bin struct {
	// Index is the bin's position in plan order.
	Index int
	// Blocks are the member block IDs, unique, in first-appearance order.
	Blocks []oram.BlockID
	// Leaf is the path assigned to the bin.
	Leaf oram.Leaf
}

// PlanConfig configures the preprocessing scan.
type PlanConfig struct {
	// S is the superblock size: the number of unique indices per bin
	// (the paper evaluates S ∈ {2, 4, 8}).
	S int
	// Leaves is the number of ORAM paths to draw bin paths from.
	Leaves uint64
	// Rand draws the per-bin uniform paths. Required.
	Rand *rand.Rand
}

// Plan is the preprocessor's output: the ordered superblock bins plus the
// (superblock → future path) metadata the trainer GPU consumes to assign
// predetermined future paths to blocks when it accesses them.
type Plan struct {
	s      int
	bins   []Bin
	queues map[oram.BlockID][]int32 // orderly bin indices per block
}

// NewPlan runs the two preprocessing steps of §IV-B on the upcoming access
// stream: the dataset scan (binning the next S unique indices together,
// skipping indices already in the open bin) and superblock path generation
// (one uniform path per bin). The final bin may be short.
func NewPlan(stream []uint64, cfg PlanConfig) (*Plan, error) {
	if cfg.S < 1 {
		return nil, fmt.Errorf("superblock: S must be >= 1, got %d", cfg.S)
	}
	if cfg.Leaves == 0 {
		return nil, fmt.Errorf("superblock: Leaves must be > 0")
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("superblock: Rand is required")
	}
	p := &Plan{
		s:      cfg.S,
		queues: make(map[oram.BlockID][]int32),
	}
	var cur []oram.BlockID
	inCur := make(map[oram.BlockID]bool, cfg.S)
	flush := func() {
		if len(cur) == 0 {
			return
		}
		idx := len(p.bins)
		leaf := oram.Leaf(cfg.Rand.Int63n(int64(cfg.Leaves)))
		p.bins = append(p.bins, Bin{Index: idx, Blocks: cur, Leaf: leaf})
		for _, id := range cur {
			p.queues[id] = append(p.queues[id], int32(idx))
		}
		cur = nil
		for k := range inCur {
			delete(inCur, k)
		}
	}
	for _, a := range stream {
		id := oram.BlockID(a)
		if inCur[id] {
			continue // §IV-B: a bin holds unique indices
		}
		cur = append(cur, id)
		inCur[id] = true
		if len(cur) == cfg.S {
			flush()
		}
	}
	flush()
	return p, nil
}

// S returns the configured superblock size.
func (p *Plan) S() int { return p.s }

// Len returns the number of bins.
func (p *Plan) Len() int { return len(p.bins) }

// Bin returns bin i.
func (p *Plan) Bin(i int) *Bin { return &p.bins[i] }

// BinsOf returns the ordered bin indices in which id appears (shared slice;
// do not mutate).
func (p *Plan) BinsOf(id oram.BlockID) []int32 { return p.queues[id] }

// FirstLeaf returns the path of the first bin containing id, or NoLeaf if
// the block never appears in the plan. Loading the ORAM with these leaves
// ("pre-placement") is equivalent to having run a converged warm-up epoch:
// each block already sits on the path of its first superblock.
func (p *Plan) FirstLeaf(id oram.BlockID) oram.Leaf {
	q := p.queues[id]
	if len(q) == 0 {
		return oram.NoLeaf
	}
	return p.bins[q[0]].Leaf
}

// UniqueBlocks returns the number of distinct blocks in the plan.
func (p *Plan) UniqueBlocks() int { return len(p.queues) }

// MetadataBytes estimates the size of the (superblock, future path)
// metadata shipped from the preprocessor to the trainer GPU (§IV-B3):
// 8 bytes per member ID plus 8 bytes per bin path.
func (p *Plan) MetadataBytes() int64 {
	var n int64
	for i := range p.bins {
		n += 8 + 8*int64(len(p.bins[i].Blocks))
	}
	return n
}

// Cursor tracks plan consumption for the trainer: for every block, how many
// of its bins have already been executed, so the block's *next* path is
// always the path of its next future bin (§IV-A: "the path of all four data
// blocks is changed independently based on their future locality").
type Cursor struct {
	plan *Plan
	pos  map[oram.BlockID]int
	next int
	// leafScratch backs Advance's nextLeaf result, reused across bins so
	// the steady-state executor loop allocates nothing.
	leafScratch []oram.Leaf
}

// NewCursor starts consumption at bin 0.
func NewCursor(p *Plan) *Cursor {
	return &Cursor{plan: p, pos: make(map[oram.BlockID]int, len(p.queues))}
}

// NextBin returns the next unexecuted bin, or nil when the plan is done.
func (c *Cursor) NextBin() *Bin {
	if c.next >= c.plan.Len() {
		return nil
	}
	return c.plan.Bin(c.next)
}

// PeekBin returns the bin offset positions after the next unexecuted one
// (PeekBin(0) == NextBin) without consuming anything, or nil past the plan
// end. Batched executors use it to gather several bins' paths in one
// fetch.
func (c *Cursor) PeekBin(offset int) *Bin {
	i := c.next + offset
	if offset < 0 || i >= c.plan.Len() {
		return nil
	}
	return c.plan.Bin(i)
}

// Done reports whether all bins were executed.
func (c *Cursor) Done() bool { return c.next >= c.plan.Len() }

// Advance consumes the current bin and returns, for every member, the leaf
// the block must be remapped to: the path of its next future bin, or
// (nextLeaf=NoLeaf) if the block does not appear again within the plan's
// horizon — the caller then draws a uniform leaf, preserving §VI
// obliviousness.
//
// nextLeaf aliases the cursor's reusable scratch: it is valid until the
// next Advance call, which every executor (consume one bin fully, then
// move on) satisfies by construction.
func (c *Cursor) Advance() (bin *Bin, nextLeaf []oram.Leaf, err error) {
	if c.next >= c.plan.Len() {
		return nil, nil, fmt.Errorf("superblock: plan exhausted")
	}
	bin = c.plan.Bin(c.next)
	if cap(c.leafScratch) < len(bin.Blocks) {
		c.leafScratch = make([]oram.Leaf, len(bin.Blocks))
	}
	c.leafScratch = c.leafScratch[:len(bin.Blocks)]
	nextLeaf = c.leafScratch
	for i, id := range bin.Blocks {
		q := c.plan.queues[id]
		k := c.pos[id]
		if k >= len(q) || q[k] != int32(bin.Index) {
			return nil, nil, fmt.Errorf("superblock: cursor desync for block %d at bin %d", id, bin.Index)
		}
		c.pos[id] = k + 1
		if k+1 < len(q) {
			nextLeaf[i] = c.plan.bins[q[k+1]].Leaf
		} else {
			nextLeaf[i] = oram.NoLeaf
		}
	}
	c.next++
	return bin, nextLeaf, nil
}
