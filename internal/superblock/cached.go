package superblock

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/oram"
)

// CachedStatic puts a trusted client cache (PrORAM's LLC; the paper's GPU
// VRAM entry cache) in front of a StaticORAM. A superblock fetch installs
// every member into the cache, so spatially local access runs are served
// with one path read per S accesses — the "perfectly formed superblock"
// case of §II-D. Dirty evictions are written back through the ORAM.
type CachedStatic struct {
	inner *StaticORAM
	lru   *cache.LRU
}

// NewCachedStatic wraps inner with a cache of capacityBlocks entries.
func NewCachedStatic(inner *StaticORAM, capacityBlocks int) (*CachedStatic, error) {
	lru, err := cache.New(capacityBlocks)
	if err != nil {
		return nil, err
	}
	return &CachedStatic{inner: inner, lru: lru}, nil
}

// Inner returns the wrapped StaticORAM.
func (cs *CachedStatic) Inner() *StaticORAM { return cs.inner }

// Cache returns the client cache (for hit-rate inspection).
func (cs *CachedStatic) Cache() *cache.LRU { return cs.lru }

// Access serves one block: from the cache if resident (no server traffic),
// otherwise by fetching its whole superblock and installing all members.
func (cs *CachedStatic) Access(op oram.Op, id oram.BlockID, data []byte) ([]byte, error) {
	if e, ok := cs.lru.Get(uint64(id)); ok {
		return cs.serveCached(e, op, data)
	}
	var victims []*cache.Victim
	err := cs.inner.AccessGroup(id, func(m oram.BlockID, payload []byte) []byte {
		var cp []byte
		if payload != nil {
			cp = make([]byte, len(payload))
			copy(cp, payload)
		}
		if victim := cs.lru.Put(uint64(m), cp, false); victim != nil {
			victims = append(victims, victim)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Write dirty victims back through their own superblocks, after the
	// fetching access completes.
	for _, v := range victims {
		if err := cs.writeback(v); err != nil {
			return nil, err
		}
	}
	e, ok := cs.lru.Get(uint64(id))
	if !ok {
		// Possible only when the group spans more blocks than the cache
		// holds; treat as a configuration error.
		return nil, fmt.Errorf("superblock: cache too small for one superblock")
	}
	return cs.serveCached(e, op, data)
}

func (cs *CachedStatic) serveCached(e *cache.Entry, op oram.Op, data []byte) ([]byte, error) {
	switch op {
	case oram.OpRead:
		if e.Payload == nil {
			return nil, nil
		}
		out := make([]byte, len(e.Payload))
		copy(out, e.Payload)
		return out, nil
	case oram.OpWrite:
		cp := make([]byte, len(data))
		copy(cp, data)
		e.Payload = cp
		e.Dirty = true
		return nil, nil
	default:
		return nil, fmt.Errorf("superblock: unknown op %v", op)
	}
}

// Flush writes every dirty cached entry back through the ORAM; call at the
// end of a run so server state reflects all writes.
func (cs *CachedStatic) Flush() error {
	for _, v := range cs.lru.FlushDirty() {
		if err := cs.writeback(v); err != nil {
			return err
		}
	}
	return nil
}

func (cs *CachedStatic) writeback(v *cache.Victim) error {
	_, err := cs.inner.Access(oram.OpWrite, oram.BlockID(v.ID), v.Payload)
	return err
}
