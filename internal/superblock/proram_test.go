package superblock

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/oram"
	"repro/internal/trace"
)

func newBase(t *testing.T, leafBits int, blocks uint64, blockSize int) (*oram.Client, *oram.CountingStore) {
	t.Helper()
	g := oram.MustGeometry(oram.GeometryConfig{LeafBits: leafBits, LeafZ: 4, BlockSize: blockSize})
	var inner oram.Store
	if blockSize > 0 {
		ps, err := oram.NewPayloadStore(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		inner = ps
	} else {
		inner = oram.NewMetaStore(g)
	}
	cs := oram.NewCountingStore(inner, nil)
	c, err := oram.NewClient(oram.ClientConfig{
		Store:     cs,
		Rand:      rand.New(rand.NewSource(77)),
		Evict:     oram.PaperEvict,
		StashHits: true,
		Blocks:    blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cs
}

func u64payload(size int, v uint64) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestStaticValidation(t *testing.T) {
	base, _ := newBase(t, 6, 64, 0)
	if _, err := NewStaticORAM(base, 0); err == nil {
		t.Error("S=0 accepted")
	}
	so, err := NewStaticORAM(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if so.Base() != base {
		t.Error("Base not retained")
	}
	if _, err := so.Access(oram.OpRead, 9999, nil); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestStaticGroupInvariant(t *testing.T) {
	const blocks = 64
	base, _ := newBase(t, 6, blocks, 8)
	so, err := NewStaticORAM(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := so.LoadGrouped(blocks, func(id oram.BlockID) []byte { return u64payload(8, uint64(id)) }); err != nil {
		t.Fatal(err)
	}
	// After load, every group shares one leaf.
	checkInvariant := func() {
		for grp := uint64(0); grp < blocks/4; grp++ {
			l0 := base.PosMap().Get(oram.BlockID(grp * 4))
			for k := uint64(1); k < 4; k++ {
				if l := base.PosMap().Get(oram.BlockID(grp*4 + k)); l != l0 {
					t.Fatalf("group %d split: leaves %d vs %d", grp, l0, l)
				}
			}
		}
	}
	checkInvariant()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		id := oram.BlockID(rng.Intn(blocks))
		got, err := so.Access(oram.OpRead, id, nil)
		if err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(id) {
			t.Fatalf("block %d corrupt: %x", id, got)
		}
		checkInvariant()
	}
}

func TestStaticReadYourWrites(t *testing.T) {
	const blocks = 32
	base, _ := newBase(t, 5, blocks, 8)
	so, err := NewStaticORAM(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := so.LoadGrouped(blocks, func(id oram.BlockID) []byte { return u64payload(8, 0) }); err != nil {
		t.Fatal(err)
	}
	ref := make(map[oram.BlockID][]byte)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		id := oram.BlockID(rng.Intn(blocks))
		if rng.Intn(2) == 0 {
			v := u64payload(8, rng.Uint64())
			if _, err := so.Access(oram.OpWrite, id, v); err != nil {
				t.Fatal(err)
			}
			ref[id] = v
		} else {
			got, err := so.Access(oram.OpRead, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := ref[id]
			if want == nil {
				want = u64payload(8, 0)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d = %x, want %x", i, id, got, want)
			}
		}
	}
}

// TestCachedStaticSequentialGain reproduces §II-D's "perfectly formed
// superblock" arithmetic: with a client cache over static superblocks of
// size S, a sequential scan costs ~1/S path reads per access.
func TestCachedStaticSequentialGain(t *testing.T) {
	const blocks = 256
	const S = 4
	base, _ := newBase(t, 8, blocks, 0)
	so, err := NewStaticORAM(base, S)
	if err != nil {
		t.Fatal(err)
	}
	if err := so.LoadGrouped(blocks, nil); err != nil {
		t.Fatal(err)
	}
	cs, err := NewCachedStatic(so, 2*S)
	if err != nil {
		t.Fatal(err)
	}
	base.ResetStats()
	stream := trace.Sequential(blocks, 1024)
	for _, a := range stream {
		if _, err := cs.Access(oram.OpRead, oram.BlockID(a), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := base.Stats()
	readsPerAccess := float64(st.PathReads) / float64(len(stream))
	if readsPerAccess > 1.0/S+0.05 {
		t.Errorf("sequential reads/access = %.3f, want ≈ %.3f", readsPerAccess, 1.0/S)
	}
	if hr := cs.Cache().HitRate(); hr < 0.7 {
		t.Errorf("cache hit rate = %.2f, want ≈ 0.75", hr)
	}
}

// TestCachedStaticWritebackDurability: dirty cached entries must survive a
// flush and land in the ORAM.
func TestCachedStaticWritebackDurability(t *testing.T) {
	const blocks = 64
	base, _ := newBase(t, 6, blocks, 8)
	so, err := NewStaticORAM(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := so.LoadGrouped(blocks, func(id oram.BlockID) []byte { return u64payload(8, 0) }); err != nil {
		t.Fatal(err)
	}
	cs, err := NewCachedStatic(so, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := oram.BlockID(0); i < 16; i++ {
		if _, err := cs.Access(oram.OpWrite, i, u64payload(8, uint64(i)+100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read back through a fresh (uncached) path: values must be present.
	for i := oram.BlockID(0); i < 16; i++ {
		got, err := so.Access(oram.OpRead, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(i)+100 {
			t.Errorf("block %d = %x after flush", i, got)
		}
	}
	if cs.Inner() != so {
		t.Error("Inner not retained")
	}
}

func TestDynamicValidation(t *testing.T) {
	base, _ := newBase(t, 6, 64, 0)
	if _, err := NewDynamicORAM(base, DynamicConfig{S: 1, MergeThreshold: 3}); err == nil {
		t.Error("S=1 accepted")
	}
	if _, err := NewDynamicORAM(base, DynamicConfig{S: 4, MergeThreshold: 1, SplitThreshold: 2}); err == nil {
		t.Error("split >= merge accepted")
	}
	d, err := NewDynamicORAM(base, DefaultDynamicConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Base() != base {
		t.Error("Base not retained")
	}
	if _, err := d.Access(oram.OpRead, 9999, nil); err == nil {
		t.Error("out-of-range block accepted")
	}
}

// TestDynamicMergesOnSequential: a sequential stream drives the locality
// counters up, groups fuse, and path reads drop below one per access.
func TestDynamicMergesOnSequential(t *testing.T) {
	const blocks = 256
	base, _ := newBase(t, 8, blocks, 0)
	d, err := NewDynamicORAM(base, DefaultDynamicConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	stream := trace.Sequential(blocks, 2048)
	for _, a := range stream {
		if _, err := d.Access(oram.OpRead, oram.BlockID(a), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.MergeEvents == 0 {
		t.Error("no merges on a sequential stream")
	}
	if d.MergedGroups() == 0 {
		t.Error("no groups remained merged")
	}
}

// TestDynamicDegeneratesOnRandom reproduces the paper's observation
// ("In the absence of good predictability, PrORAM performs similarly to
// the PathORAM"): on a uniform-random stream, the counters never climb, no
// merges happen, and the access path is plain PathORAM.
func TestDynamicDegeneratesOnRandom(t *testing.T) {
	const blocks = 1 << 10
	base, _ := newBase(t, 10, blocks, 0)
	d, err := NewDynamicORAM(base, DefaultDynamicConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	base.ResetStats()
	stream := trace.Uniform(rand.New(rand.NewSource(3)), blocks, 2000)
	for _, a := range stream {
		if _, err := d.Access(oram.OpRead, oram.BlockID(a), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.MergeEvents != 0 {
		t.Errorf("%d merges on random stream (counters should never reach threshold)", d.MergeEvents)
	}
	st := base.Stats()
	// Every access must be a single path read (+ writes), i.e. PathORAM.
	if st.PathReads+st.StashHits != st.Accesses {
		t.Errorf("random stream deviated from PathORAM: reads=%d hits=%d accesses=%d",
			st.PathReads, st.StashHits, st.Accesses)
	}
}

// TestDynamicMergeSplitCycle: locality that appears and disappears fuses
// then dissolves a group.
func TestDynamicMergeSplitCycle(t *testing.T) {
	const blocks = 64
	base, _ := newBase(t, 6, blocks, 0)
	d, err := NewDynamicORAM(base, DynamicConfig{S: 4, MergeThreshold: 2, SplitThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Hammer group 0 (blocks 0..3) to fuse it.
	for i := 0; i < 8; i++ {
		if _, err := d.Access(oram.OpRead, oram.BlockID(i%4), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.MergedGroups() != 1 {
		t.Fatalf("group 0 not merged (merged=%d)", d.MergedGroups())
	}
	// Alternate far-apart groups to starve the counter.
	for i := 0; i < 16; i++ {
		id := oram.BlockID(8)
		if i%2 == 0 {
			id = oram.BlockID(16)
		}
		if _, err := d.Access(oram.OpRead, id, nil); err != nil {
			t.Fatal(err)
		}
		// Interleave group 0 so its counter decays.
		if _, err := d.Access(oram.OpRead, oram.BlockID(i%4), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.SplitEvents == 0 {
		t.Error("no splits despite destroyed locality")
	}
}

// TestDynamicReadYourWrites across merge transitions.
func TestDynamicReadYourWrites(t *testing.T) {
	const blocks = 32
	base, _ := newBase(t, 5, blocks, 8)
	d, err := NewDynamicORAM(base, DynamicConfig{S: 4, MergeThreshold: 2, SplitThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Load(blocks, nil, func(oram.BlockID) []byte { return u64payload(8, 0) }); err != nil {
		t.Fatal(err)
	}
	ref := make(map[oram.BlockID][]byte)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		var id oram.BlockID
		if i%3 == 0 {
			id = oram.BlockID(i % 4) // keep group 0 hot → merges
		} else {
			id = oram.BlockID(rng.Intn(blocks))
		}
		if rng.Intn(2) == 0 {
			v := u64payload(8, rng.Uint64())
			if _, err := d.Access(oram.OpWrite, id, v); err != nil {
				t.Fatal(err)
			}
			ref[id] = v
		} else {
			got, err := d.Access(oram.OpRead, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := ref[id]
			if want == nil {
				want = u64payload(8, 0)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d block %d = %x, want %x", i, id, got, want)
			}
		}
	}
	if d.MergeEvents == 0 {
		t.Error("test never exercised the merged path")
	}
}
