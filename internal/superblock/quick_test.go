package superblock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/oram"
)

// TestQuickPlanInvariants: for random streams and superblock sizes, the
// plan must (1) cover every stream element in order, (2) never exceed S
// unique members per bin, (3) keep per-block queues strictly increasing,
// (4) draw every bin leaf within range.
func TestQuickPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(streamRaw []uint16, sRaw uint8, seed int64) bool {
		if len(streamRaw) == 0 {
			return true
		}
		s := 1 + int(sRaw%8)
		const leaves = 256
		stream := make([]uint64, len(streamRaw))
		for i, v := range streamRaw {
			stream[i] = uint64(v % 512)
		}
		p, err := NewPlan(stream, PlanConfig{
			S: s, Leaves: leaves, Rand: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return false
		}
		// (2) bin sizes and member uniqueness; (4) leaf ranges.
		totalMembers := 0
		for i := 0; i < p.Len(); i++ {
			b := p.Bin(i)
			if b.Index != i {
				return false
			}
			if len(b.Blocks) == 0 || len(b.Blocks) > s {
				return false
			}
			if uint64(b.Leaf) >= leaves {
				return false
			}
			seen := map[oram.BlockID]bool{}
			for _, id := range b.Blocks {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
			totalMembers += len(b.Blocks)
		}
		// Only full bins except possibly the last.
		for i := 0; i < p.Len()-1; i++ {
			if len(p.Bin(i).Blocks) != s {
				return false
			}
		}
		// (3) queues strictly increasing and consistent with bins.
		queued := 0
		for id, q := range p.queues {
			prev := int32(-1)
			for _, bi := range q {
				if bi <= prev {
					return false
				}
				prev = bi
				found := false
				for _, m := range p.bins[bi].Blocks {
					if m == id {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			queued += len(q)
		}
		if queued != totalMembers {
			return false
		}
		// (1) replaying the stream against a cursor: every access is
		// served by the current or an already-executed bin.
		cur := NewCursor(p)
		executed := map[oram.BlockID]bool{}
		si := 0
		for !cur.Done() {
			bin, _, err := cur.Advance()
			if err != nil {
				return false
			}
			for _, id := range bin.Blocks {
				executed[id] = true
			}
			// Consume stream entries servable so far.
			for si < len(stream) && executed[oram.BlockID(stream[si])] {
				si++
			}
			// Reset visibility: a block's cached copy only survives
			// until re-binned; for this invariant it is enough that
			// the bin containing stream[si] is executed in order.
			if si < len(stream) {
				// The next unserved access must belong to a future bin.
				q := p.BinsOf(oram.BlockID(stream[si]))
				future := false
				for _, bi := range q {
					if int(bi) >= bin.Index {
						future = true
						break
					}
				}
				if !future {
					return false
				}
			}
		}
		return si == len(stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestQuickCursorNextLeafConsistency: the leaf handed out on Advance for a
// block equals the leaf of the block's next bin (or NoLeaf at horizon end).
func TestQuickCursorNextLeafConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(streamRaw []uint8, seed int64) bool {
		if len(streamRaw) < 4 {
			return true
		}
		stream := make([]uint64, len(streamRaw))
		for i, v := range streamRaw {
			stream[i] = uint64(v % 32)
		}
		p, err := NewPlan(stream, PlanConfig{
			S: 3, Leaves: 64, Rand: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return false
		}
		cur := NewCursor(p)
		pos := map[oram.BlockID]int{}
		for !cur.Done() {
			bin, next, err := cur.Advance()
			if err != nil {
				return false
			}
			for i, id := range bin.Blocks {
				q := p.BinsOf(id)
				k := pos[id]
				if k >= len(q) || q[k] != int32(bin.Index) {
					return false
				}
				pos[id] = k + 1
				if k+1 < len(q) {
					if next[i] != p.Bin(int(q[k+1])).Leaf {
						return false
					}
				} else if next[i] != oram.NoLeaf {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestQuickMetadataBytes: metadata size is exactly 8·(bins + members).
func TestQuickMetadataBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(streamRaw []uint8) bool {
		stream := make([]uint64, len(streamRaw))
		for i, v := range streamRaw {
			stream[i] = uint64(v)
		}
		p, err := NewPlan(stream, PlanConfig{S: 4, Leaves: 32, Rand: rand.New(rand.NewSource(1))})
		if err != nil {
			return false
		}
		members := 0
		for i := 0; i < p.Len(); i++ {
			members += len(p.Bin(i).Blocks)
		}
		return p.MetadataBytes() == int64(8*(p.Len()+members))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
