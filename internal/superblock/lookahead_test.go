package superblock

import (
	"math/rand"
	"testing"

	"repro/internal/oram"
	"repro/internal/stats"
)

func planCfg(s int, leaves uint64, seed int64) PlanConfig {
	return PlanConfig{S: s, Leaves: leaves, Rand: rand.New(rand.NewSource(seed))}
}

func TestNewPlanValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []PlanConfig{
		{S: 0, Leaves: 8, Rand: rng},
		{S: 2, Leaves: 0, Rand: rng},
		{S: 2, Leaves: 8, Rand: nil},
	}
	for i, cfg := range bad {
		if _, err := NewPlan([]uint64{1, 2}, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestPlanBinning(t *testing.T) {
	stream := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	p, err := NewPlan(stream, planCfg(4, 64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p.S() != 4 {
		t.Errorf("S = %d", p.S())
	}
	if p.Len() != 3 {
		t.Fatalf("bins = %d, want 3", p.Len())
	}
	wantBins := [][]oram.BlockID{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10}}
	for i, want := range wantBins {
		b := p.Bin(i)
		if b.Index != i {
			t.Errorf("bin %d index = %d", i, b.Index)
		}
		if len(b.Blocks) != len(want) {
			t.Fatalf("bin %d size = %d, want %d", i, len(b.Blocks), len(want))
		}
		for j := range want {
			if b.Blocks[j] != want[j] {
				t.Errorf("bin %d block %d = %d, want %d", i, j, b.Blocks[j], want[j])
			}
		}
		if uint64(b.Leaf) >= 64 {
			t.Errorf("bin %d leaf %d out of range", i, b.Leaf)
		}
	}
	if p.UniqueBlocks() != 10 {
		t.Errorf("UniqueBlocks = %d", p.UniqueBlocks())
	}
	// Metadata: 3 bin paths + 10 member IDs, 8 bytes each.
	if p.MetadataBytes() != 3*8+10*8 {
		t.Errorf("MetadataBytes = %d", p.MetadataBytes())
	}
}

// TestPlanWithinBinDedupe checks §IV-B2: a bin holds the next S *unique*
// indices; repeats inside an open bin are folded into one membership.
func TestPlanWithinBinDedupe(t *testing.T) {
	stream := []uint64{1, 1, 2, 2, 3, 3, 1, 4}
	p, err := NewPlan(stream, planCfg(2, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Dedupe applies within the *open* bin only: the second "2" arrives
	// just after [1,2] was sealed, so it opens the next bin. Bins:
	// [1,2], [2,3], [3,1], [4].
	want := [][]oram.BlockID{{1, 2}, {2, 3}, {3, 1}, {4}}
	if p.Len() != len(want) {
		t.Fatalf("bins = %d, want %d", p.Len(), len(want))
	}
	for i := range want {
		got := p.Bin(i).Blocks
		if len(got) != len(want[i]) {
			t.Fatalf("bin %d = %v, want %v", i, got, want[i])
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Errorf("bin %d = %v, want %v", i, got, want[i])
			}
		}
	}
	// Block 1 appears in bins 0 and 2.
	q := p.BinsOf(1)
	if len(q) != 2 || q[0] != 0 || q[1] != 2 {
		t.Errorf("BinsOf(1) = %v", q)
	}
	if p.FirstLeaf(1) != p.Bin(0).Leaf {
		t.Error("FirstLeaf(1) wrong")
	}
	if p.FirstLeaf(999) != oram.NoLeaf {
		t.Error("FirstLeaf of absent block should be NoLeaf")
	}
}

func TestPlanEmptyStream(t *testing.T) {
	p, err := NewPlan(nil, planCfg(4, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 || p.UniqueBlocks() != 0 || p.MetadataBytes() != 0 {
		t.Errorf("empty plan: len=%d unique=%d bytes=%d", p.Len(), p.UniqueBlocks(), p.MetadataBytes())
	}
	c := NewCursor(p)
	if !c.Done() || c.NextBin() != nil {
		t.Error("cursor on empty plan should be done")
	}
	if _, _, err := c.Advance(); err == nil {
		t.Error("Advance on empty plan succeeded")
	}
}

// TestBinLeafUniformity checks §IV-B3/§VI: bin paths are uniform over
// leaves (chi-square, α=0.001).
func TestBinLeafUniformity(t *testing.T) {
	const leaves = 64
	stream := make([]uint64, 40000)
	for i := range stream {
		stream[i] = uint64(i) // all distinct → 10k bins at S=4
	}
	p, err := NewPlan(stream, planCfg(4, leaves, 4))
	if err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram(leaves)
	for i := 0; i < p.Len(); i++ {
		h.Add(uint64(p.Bin(i).Leaf))
	}
	if _, _, pval, err := stats.ChiSquareUniform(h); err != nil || pval < 0.001 {
		t.Errorf("bin leaves not uniform: p=%v err=%v", pval, err)
	}
}

func TestCursorAdvance(t *testing.T) {
	// Block 5 appears in bins 0 and 2; block 6 only in bin 0.
	stream := []uint64{5, 6, 7, 8, 5, 9}
	p, err := NewPlan(stream, planCfg(2, 32, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Bins: [5,6], [7,8], [5,9].
	if p.Len() != 3 {
		t.Fatalf("bins = %d", p.Len())
	}
	c := NewCursor(p)
	if c.Done() {
		t.Fatal("fresh cursor done")
	}
	if nb := c.NextBin(); nb == nil || nb.Index != 0 {
		t.Fatalf("NextBin = %+v", nb)
	}
	bin, next, err := c.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if bin.Index != 0 || len(next) != 2 {
		t.Fatalf("bin %d, next %v", bin.Index, next)
	}
	// Block 5's next path is bin 2's leaf; block 6 leaves the horizon.
	if next[0] != p.Bin(2).Leaf {
		t.Errorf("next leaf of 5 = %d, want bin2 leaf %d", next[0], p.Bin(2).Leaf)
	}
	if next[1] != oram.NoLeaf {
		t.Errorf("next leaf of 6 = %d, want NoLeaf", next[1])
	}
	if _, _, err := c.Advance(); err != nil { // bin 1
		t.Fatal(err)
	}
	bin, next, err = c.Advance() // bin 2
	if err != nil {
		t.Fatal(err)
	}
	if next[0] != oram.NoLeaf || next[1] != oram.NoLeaf {
		t.Errorf("final bin next leaves = %v", next)
	}
	if !c.Done() {
		t.Error("cursor not done after all bins")
	}
	if _, _, err := c.Advance(); err == nil {
		t.Error("Advance past end succeeded")
	}
	_ = bin
}

func TestPlanDeterminism(t *testing.T) {
	stream := make([]uint64, 1000)
	rng := rand.New(rand.NewSource(99))
	for i := range stream {
		stream[i] = uint64(rng.Intn(500))
	}
	p1, err := NewPlan(stream, planCfg(4, 128, 7))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(stream, planCfg(4, 128, 7))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("lengths differ")
	}
	for i := 0; i < p1.Len(); i++ {
		if p1.Bin(i).Leaf != p2.Bin(i).Leaf {
			t.Fatalf("bin %d leaves differ", i)
		}
	}
}
