// Package stats provides the statistical machinery for the paper's security
// analysis (§VI) and workload characterisation: histograms, chi-square
// goodness-of-fit and two-sample tests, and summary statistics. The §VI
// claim under test is that path accesses are uniform over leaves and that
// two different request streams generate indistinguishable access patterns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences over a fixed number of integer-keyed bins.
type Histogram struct {
	counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with n bins.
func NewHistogram(n int) *Histogram {
	return &Histogram{counts: make([]uint64, n)}
}

// Add increments bin i.
func (h *Histogram) Add(i uint64) {
	h.counts[i]++
	h.total++
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Total returns the total number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Counts returns the underlying counts slice (not a copy).
func (h *Histogram) Counts() []uint64 { return h.counts }

// Max returns the largest bin count.
func (h *Histogram) Max() uint64 {
	var m uint64
	for _, c := range h.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// ChiSquareUniform computes the chi-square statistic of the histogram
// against the uniform distribution over its bins, returning the statistic,
// the degrees of freedom and the p-value (probability of a statistic at
// least this large under uniformity). Bins are pooled to keep expected
// counts >= 5, the usual validity rule.
func ChiSquareUniform(h *Histogram) (stat float64, df int, p float64, err error) {
	if h.total == 0 {
		return 0, 0, 1, fmt.Errorf("stats: empty histogram")
	}
	k := len(h.counts)
	if k < 2 {
		return 0, 0, 1, fmt.Errorf("stats: need >= 2 bins, have %d", k)
	}
	expected := float64(h.total) / float64(k)
	if expected < 5 {
		// Pool adjacent bins until expectation is adequate.
		factor := int(math.Ceil(5 / expected))
		if factor < 1 {
			factor = 1
		}
		pooled := poolBins(h.counts, factor)
		if len(pooled) < 2 {
			return 0, 0, 1, fmt.Errorf("stats: too few observations (%d) for %d bins", h.total, k)
		}
		return chiSquareAgainstUniform(pooled, h.total)
	}
	return chiSquareAgainstUniform(h.counts, h.total)
}

func poolBins(counts []uint64, factor int) []uint64 {
	out := make([]uint64, 0, (len(counts)+factor-1)/factor)
	for i := 0; i < len(counts); i += factor {
		var s uint64
		for j := i; j < i+factor && j < len(counts); j++ {
			s += counts[j]
		}
		out = append(out, s)
	}
	// Drop a ragged final bin so all expectations are equal.
	if len(counts)%factor != 0 && len(out) > 2 {
		out = out[:len(out)-1]
	}
	return out
}

func chiSquareAgainstUniform(counts []uint64, total uint64) (float64, int, float64, error) {
	k := len(counts)
	var obsTotal uint64
	for _, c := range counts {
		obsTotal += c
	}
	expected := float64(obsTotal) / float64(k)
	var stat float64
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df := k - 1
	return stat, df, ChiSquareSurvival(stat, df), nil
}

// ChiSquareTwoSample tests whether two histograms over the same bins are
// drawn from the same distribution (the §VI indistinguishability check for
// two access streams). Bins where both are zero are skipped; bins are
// pooled for small expectations.
func ChiSquareTwoSample(a, b *Histogram) (stat float64, df int, p float64, err error) {
	if a.Bins() != b.Bins() {
		return 0, 0, 1, fmt.Errorf("stats: bin mismatch %d vs %d", a.Bins(), b.Bins())
	}
	if a.total == 0 || b.total == 0 {
		return 0, 0, 1, fmt.Errorf("stats: empty histogram")
	}
	// Pool to keep per-bin totals reasonable.
	k := a.Bins()
	perBin := float64(a.total+b.total) / float64(k)
	factor := 1
	if perBin < 10 {
		factor = int(math.Ceil(10 / perBin))
	}
	ca := poolBins(a.counts, factor)
	cb := poolBins(b.counts, factor)
	if len(cb) < len(ca) {
		ca = ca[:len(cb)]
	} else if len(ca) < len(cb) {
		cb = cb[:len(ca)]
	}
	na, nb := 0.0, 0.0
	for i := range ca {
		na += float64(ca[i])
		nb += float64(cb[i])
	}
	if na == 0 || nb == 0 {
		return 0, 0, 1, fmt.Errorf("stats: empty pooled histogram")
	}
	kk := 0
	for i := range ca {
		tot := float64(ca[i]) + float64(cb[i])
		if tot == 0 {
			continue
		}
		kk++
		ea := tot * na / (na + nb)
		eb := tot * nb / (na + nb)
		da := float64(ca[i]) - ea
		db := float64(cb[i]) - eb
		stat += da*da/ea + db*db/eb
	}
	if kk < 2 {
		return 0, 0, 1, fmt.Errorf("stats: too few non-empty bins")
	}
	df = kk - 1
	return stat, df, ChiSquareSurvival(stat, df), nil
}

// ChiSquareSurvival returns P(X >= stat) for X ~ chi-square with df degrees
// of freedom, via the Wilson–Hilferty normal approximation (accurate to a
// few 1e-3 for df >= 3, ample for pass/fail hypothesis checks at the
// α = 0.001 the tests use).
func ChiSquareSurvival(stat float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	if stat <= 0 {
		return 1
	}
	d := float64(df)
	z := (math.Cbrt(stat/d) - (1 - 2/(9*d))) / math.Sqrt(2/(9*d))
	return NormalSurvival(z)
}

// NormalSurvival returns P(Z >= z) for the standard normal.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
}

// Summarize computes descriptive statistics of xs (which it sorts a copy of).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sumsq float64
	for _, x := range s {
		sum += x
		sumsq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: quantile(s, 0.5),
		P95:    quantile(s, 0.95),
		P99:    quantile(s, 0.99),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
