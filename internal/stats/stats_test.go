package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	if h.Bins() != 4 || h.Total() != 0 {
		t.Fatal("fresh histogram wrong")
	}
	h.Add(0)
	h.Add(0)
	h.Add(3)
	if h.Count(0) != 2 || h.Count(3) != 1 || h.Total() != 3 {
		t.Errorf("counts wrong: %v", h.Counts())
	}
	if h.Max() != 2 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram(64)
	for i := 0; i < 64000; i++ {
		h.Add(uint64(rng.Intn(64)))
	}
	stat, df, p, err := ChiSquareUniform(h)
	if err != nil {
		t.Fatal(err)
	}
	if df != 63 {
		t.Errorf("df = %d, want 63", df)
	}
	if p < 0.001 {
		t.Errorf("uniform sample rejected: chi2=%.1f p=%g", stat, p)
	}
}

func TestChiSquareUniformRejectsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram(64)
	for i := 0; i < 64000; i++ {
		// Heavy skew toward low bins.
		h.Add(uint64(rng.Intn(8)))
	}
	_, _, p, err := ChiSquareUniform(h)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("skewed sample accepted: p=%g", p)
	}
}

func TestChiSquareUniformPoolsSmallBins(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHistogram(1024)
	for i := 0; i < 2048; i++ { // expectation 2 per bin → pooling needed
		h.Add(uint64(rng.Intn(1024)))
	}
	_, df, p, err := ChiSquareUniform(h)
	if err != nil {
		t.Fatal(err)
	}
	if df >= 1023 {
		t.Errorf("pooling did not reduce df: %d", df)
	}
	if p < 0.001 {
		t.Errorf("uniform sample rejected after pooling: p=%g", p)
	}
}

func TestChiSquareUniformErrors(t *testing.T) {
	if _, _, _, err := ChiSquareUniform(NewHistogram(4)); err == nil {
		t.Error("empty histogram accepted")
	}
	h := NewHistogram(1)
	h.Add(0)
	if _, _, _, err := ChiSquareUniform(h); err == nil {
		t.Error("single-bin histogram accepted")
	}
}

func TestChiSquareTwoSampleSame(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := NewHistogram(32), NewHistogram(32)
	for i := 0; i < 20000; i++ {
		a.Add(uint64(rng.Intn(32)))
		b.Add(uint64(rng.Intn(32)))
	}
	_, _, p, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Errorf("identical distributions distinguished: p=%g", p)
	}
}

func TestChiSquareTwoSampleDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := NewHistogram(32), NewHistogram(32)
	for i := 0; i < 20000; i++ {
		a.Add(uint64(rng.Intn(32)))
		b.Add(uint64(rng.Intn(16))) // b concentrated in lower half
	}
	_, _, p, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("different distributions not distinguished: p=%g", p)
	}
}

func TestChiSquareTwoSampleErrors(t *testing.T) {
	a, b := NewHistogram(4), NewHistogram(8)
	if _, _, _, err := ChiSquareTwoSample(a, b); err == nil {
		t.Error("bin mismatch accepted")
	}
	c, d := NewHistogram(4), NewHistogram(4)
	if _, _, _, err := ChiSquareTwoSample(c, d); err == nil {
		t.Error("empty histograms accepted")
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Known chi-square critical values: P(X >= x) for df, x.
	cases := []struct {
		stat float64
		df   int
		p    float64
		tol  float64
	}{
		{3.841, 1, 0.05, 0.02}, // Wilson–Hilferty is weakest at df=1
		{5.991, 2, 0.05, 0.01},
		{18.307, 10, 0.05, 0.005},
		{29.588, 10, 0.001, 0.001},
		{124.342, 100, 0.05, 0.005},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.stat, c.df)
		if math.Abs(got-c.p) > c.tol {
			t.Errorf("ChiSquareSurvival(%.3f, %d) = %.4f, want %.4f±%.3f", c.stat, c.df, got, c.p, c.tol)
		}
	}
	if ChiSquareSurvival(0, 5) != 1 || ChiSquareSurvival(-1, 5) != 1 {
		t.Error("non-positive stat should give p=1")
	}
	if ChiSquareSurvival(5, 0) != 1 {
		t.Error("df=0 should give p=1")
	}
}

func TestNormalSurvival(t *testing.T) {
	cases := []struct{ z, p, tol float64 }{
		{0, 0.5, 1e-9},
		{1.6449, 0.05, 1e-4},
		{2.3263, 0.01, 1e-4},
		{-1.6449, 0.95, 1e-4},
	}
	for _, c := range cases {
		if got := NormalSurvival(c.z); math.Abs(got-c.p) > c.tol {
			t.Errorf("NormalSurvival(%v) = %v, want %v", c.z, got, c.p)
		}
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary wrong")
	}
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	// Input must be unmodified.
	if xs[0] != 5 {
		t.Error("Summarize mutated input")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.P95 != 7 || one.P99 != 7 || one.Std != 0 {
		t.Errorf("single-value summary = %+v", one)
	}
	// Percentiles interpolate.
	long := make([]float64, 101)
	for i := range long {
		long[i] = float64(i)
	}
	ls := Summarize(long)
	if ls.P95 != 95 || ls.P99 != 99 || ls.Median != 50 {
		t.Errorf("percentiles = %+v", ls)
	}
}
