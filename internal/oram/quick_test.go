package oram

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickGeometrySlotIndexInjective: for random geometries, slot indices
// are unique and dense across the tree.
func TestQuickGeometrySlotIndexInjective(t *testing.T) {
	f := func(leafBitsRaw, leafZRaw, rootZRaw uint8, profRaw uint8) bool {
		leafBits := 1 + int(leafBitsRaw%7) // 1..7
		leafZ := 1 + int(leafZRaw%6)       // 1..6
		rootZ := leafZ + int(rootZRaw%8)   // leafZ..leafZ+7
		prof := Profile(profRaw % 4)
		g, err := NewGeometry(GeometryConfig{
			LeafBits: leafBits, LeafZ: leafZ, RootZ: rootZ, Profile: prof, BlockSize: 64,
		})
		if err != nil {
			return false
		}
		seen := make(map[int64]bool, g.TotalSlots())
		for lvl := 0; lvl < g.Levels(); lvl++ {
			for node := uint64(0); node < 1<<uint(lvl); node++ {
				for s := 0; s < g.BucketSize(lvl); s++ {
					i := g.SlotIndex(lvl, node, s)
					if i < 0 || i >= g.TotalSlots() || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
		}
		return int64(len(seen)) == g.TotalSlots()
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPosMapRoundTrip: Set/Get round-trips arbitrary leaves and the
// NoLeaf sentinel.
func TestQuickPosMapRoundTrip(t *testing.T) {
	pm := NewPosMap(1 << 12)
	f := func(idRaw uint16, leafRaw uint32, clear bool) bool {
		id := BlockID(uint64(idRaw) % pm.Len())
		if clear {
			pm.Set(id, NoLeaf)
			return !pm.Known(id) && pm.Get(id) == NoLeaf
		}
		leaf := Leaf(leafRaw % (1 << 24))
		pm.Set(id, leaf)
		return pm.Known(id) && pm.Get(id) == leaf
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBulkLoadConservation: for random table sizes, Load places every
// block exactly once on its assigned path.
func TestQuickBulkLoadConservation(t *testing.T) {
	f := func(nRaw uint16, seed int64) bool {
		n := 16 + uint64(nRaw%1000)
		g, err := NewGeometry(GeometryConfig{LeafBits: LeafBitsFor(n), LeafZ: 4, BlockSize: 0})
		if err != nil {
			return false
		}
		st := NewMetaStore(g)
		c, err := NewClient(ClientConfig{
			Store: st, Rand: rand.New(rand.NewSource(seed)), StashHits: true, Blocks: n,
		})
		if err != nil {
			return false
		}
		if err := c.Load(n, nil, nil); err != nil {
			return false
		}
		count := make(map[BlockID]int)
		buf := make([]Slot, 4)
		for lvl := 0; lvl < g.Levels(); lvl++ {
			for node := uint64(0); node < 1<<uint(lvl); node++ {
				if err := st.ReadBucket(lvl, node, buf); err != nil {
					return false
				}
				for i := range buf {
					if buf[i].Dummy() {
						continue
					}
					count[buf[i].ID]++
					if g.NodeAt(buf[i].Leaf, lvl) != node {
						return false // off-path placement
					}
				}
			}
		}
		for id := BlockID(0); id < BlockID(n); id++ {
			k := count[id]
			if c.Stash().Contains(id) {
				k++
			}
			if k != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// faultyStore injects an error after a countdown of operations, testing
// that clients surface failures instead of corrupting state silently.
type faultyStore struct {
	Store
	countdown int
}

var errInjected = errors.New("injected storage fault")

func (f *faultyStore) tick() error {
	f.countdown--
	if f.countdown <= 0 {
		return errInjected
	}
	return nil
}

func (f *faultyStore) ReadBucket(level int, node uint64, dst []Slot) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Store.ReadBucket(level, node, dst)
}

func (f *faultyStore) WriteBucket(level int, node uint64, src []Slot) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Store.WriteBucket(level, node, src)
}

func (f *faultyStore) ReadSlot(level int, node uint64, slot int, dst *Slot) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Store.ReadSlot(level, node, slot, dst)
}

func (f *faultyStore) WriteSlot(level int, node uint64, slot int, src Slot) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Store.WriteSlot(level, node, slot, src)
}

// TestFaultInjectionSurfacesErrors: faults at every depth of the access
// path must propagate as errors (never panic, never silent success).
func TestFaultInjectionSurfacesErrors(t *testing.T) {
	const blocks = 64
	for countdown := 1; countdown < 40; countdown += 3 {
		g := MustGeometry(GeometryConfig{LeafBits: 6, LeafZ: 4, BlockSize: 0})
		inner := NewMetaStore(g)
		c, err := NewClient(ClientConfig{
			Store: inner, Rand: rand.New(rand.NewSource(6)), StashHits: true, Blocks: blocks,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Load(blocks, nil, nil); err != nil {
			t.Fatal(err)
		}
		// Swap in the faulty wrapper after loading.
		cf, err := NewClient(ClientConfig{
			Store: &faultyStore{Store: inner, countdown: countdown},
			Rand:  rand.New(rand.NewSource(7)), StashHits: true, Blocks: blocks,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Copy the position map so accesses resolve.
		for id := BlockID(0); id < blocks; id++ {
			cf.PosMap().Set(id, c.PosMap().Get(id))
		}
		var firstErr error
		for i := 0; i < 10 && firstErr == nil; i++ {
			_, firstErr = cf.Access(OpRead, BlockID(i), nil)
		}
		if firstErr == nil {
			t.Fatalf("countdown %d: fault never surfaced", countdown)
		}
		if !errors.Is(firstErr, errInjected) {
			// Wrapped is fine; the chain must reach the injected error.
			if !containsInjected(firstErr) {
				t.Fatalf("countdown %d: error chain lost the cause: %v", countdown, firstErr)
			}
		}
	}
}

func containsInjected(err error) bool {
	for err != nil {
		if errors.Is(err, errInjected) {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// TestFaultInjectionDuringDummyReads: background eviction faults surface
// too.
func TestFaultInjectionDuringDummyReads(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 6, LeafZ: 1, BlockSize: 0})
	inner := NewMetaStore(g)
	c, err := NewClient(ClientConfig{
		Store:     &faultyStore{Store: inner, countdown: 1 << 30},
		Rand:      rand.New(rand.NewSource(8)),
		Evict:     EvictConfig{Enabled: true, High: 4, Low: 1},
		StashHits: true, Blocks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(64, nil, nil); err != nil {
		t.Fatal(err)
	}
	fs := c.Store().(*faultyStore)
	fs.countdown = 50 // let a few accesses through, then fail mid-eviction
	var sawErr bool
	for i := 0; i < 200; i++ {
		if _, err := c.Access(OpRead, BlockID(i%64), nil); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("fault during eviction never surfaced")
	}
}

// TestAccessStatsString sanity-checks stat arithmetic under quick-generated
// values.
func TestAccessStatsQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		s := AccessStats{Accesses: uint64(a), DummyReads: uint64(b)}
		got := s.DummyReadsPerAccess()
		if a == 0 {
			return got == 0
		}
		want := float64(b) / float64(a)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

// TestGeometryStringFormats pins the descriptive formats used in logs.
func TestGeometryStringFormats(t *testing.T) {
	u := MustGeometry(GeometryConfig{LeafBits: 5, LeafZ: 4, BlockSize: 0})
	if want := "tree L=5 Z=4 uniform"; u.String() != want {
		t.Errorf("uniform: %q != %q", u.String(), want)
	}
	f := MustGeometry(GeometryConfig{LeafBits: 5, LeafZ: 4, RootZ: 8, Profile: ProfileLinear, BlockSize: 0})
	if want := fmt.Sprintf("tree L=5 Z=8→4 %v", ProfileLinear); f.String() != want {
		t.Errorf("fat: %q != %q", f.String(), want)
	}
}
