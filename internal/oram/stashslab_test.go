package oram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// stashslab_test.go checks the slab-backed stash against a trivially
// correct reference (a plain map of copied values) over randomised op
// sequences, and pins the payload-ownership contract: the stash copies on
// Put/SetPayload, so no buffer a caller hands in — or mutates afterwards —
// can change stash contents, and slab-slot recycling never bleeds one
// block's bytes into another's.

// refStash is the obviously-correct model the slab must match.
type refStash struct {
	leaf    map[BlockID]Leaf
	payload map[BlockID][]byte
}

func newRefStash() *refStash {
	return &refStash{leaf: make(map[BlockID]Leaf), payload: make(map[BlockID][]byte)}
}

func (r *refStash) put(id BlockID, leaf Leaf, p []byte) {
	r.leaf[id] = leaf
	if p == nil {
		r.payload[id] = nil
	} else {
		r.payload[id] = append([]byte(nil), p...)
	}
}

func (r *refStash) remove(id BlockID) {
	delete(r.leaf, id)
	delete(r.payload, id)
}

// TestQuickSlabMatchesMapStash drives both implementations with the same
// random op sequence (put / set-leaf / set-payload / remove, with payload
// buffers deliberately mutated after each call) and compares full contents.
func TestQuickSlabMatchesMapStash(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStash()
		ref := newRefStash()
		scratch := make([]byte, 32)
		n := int(steps) + 32
		for i := 0; i < n; i++ {
			id := BlockID(rng.Intn(24)) // small ID space forces collisions & reuse
			leaf := Leaf(rng.Intn(64))
			var p []byte
			if rng.Intn(4) > 0 {
				p = scratch[:1+rng.Intn(31)]
				rng.Read(p)
			}
			switch rng.Intn(5) {
			case 0, 1:
				if err := s.Put(id, leaf, p); err != nil {
					return false
				}
				ref.put(id, leaf, p)
			case 2:
				ok := s.SetLeaf(id, leaf)
				if _, exists := ref.leaf[id]; exists != ok {
					return false
				}
				if ok {
					ref.leaf[id] = leaf
				}
			case 3:
				ok := s.SetPayload(id, p)
				if _, exists := ref.leaf[id]; exists != ok {
					return false
				}
				if ok {
					if p == nil {
						ref.payload[id] = nil
					} else {
						ref.payload[id] = append([]byte(nil), p...)
					}
				}
			case 4:
				s.Remove(id)
				ref.remove(id)
			}
			// The caller's buffer is scribbled over after every op: if the
			// stash aliased it instead of copying, contents would drift.
			rng.Read(scratch)
		}
		if s.Len() != len(ref.leaf) {
			return false
		}
		for id, wantLeaf := range ref.leaf {
			gotLeaf, ok := s.Leaf(id)
			if !ok || gotLeaf != wantLeaf {
				return false
			}
			gotP, ok := s.Payload(id)
			if !ok || !bytes.Equal(gotP, ref.payload[id]) {
				return false
			}
			if (gotP == nil) != (ref.payload[id] == nil) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestStashSlabRecycling: Remove + re-Put cycles reuse slab slots without
// the recycled buffer leaking a previous block's payload.
func TestStashSlabRecycling(t *testing.T) {
	s := NewStash()
	big := bytes.Repeat([]byte{0xAA}, 64)
	if err := s.Put(1, 0, big); err != nil {
		t.Fatal(err)
	}
	s.Remove(1)
	small := []byte{0x01, 0x02}
	if err := s.Put(2, 0, small); err != nil {
		t.Fatal(err)
	}
	p, ok := s.Payload(2)
	if !ok || !bytes.Equal(p, small) {
		t.Fatalf("recycled payload = %x, want %x", p, small)
	}
	if len(s.entries) != 1 {
		t.Errorf("slab grew to %d entries for serial reuse, want 1", len(s.entries))
	}
	// nil payload after a buffered one must read back as nil.
	if !s.SetPayload(2, nil) {
		t.Fatal("SetPayload failed")
	}
	if p, ok := s.Payload(2); !ok || p != nil {
		t.Errorf("nil payload read back as %v", p)
	}
}

// TestStashPutCopies is the aliasing regression the refactor is pinned by:
// mutating the buffer passed to Put/SetPayload after the call must not
// change what the stash returns.
func TestStashPutCopies(t *testing.T) {
	s := NewStash()
	buf := []byte{1, 2, 3, 4}
	if err := s.Put(7, 3, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	if p, _ := s.Payload(7); p[0] != 1 {
		t.Errorf("stash aliased the Put buffer: got %v", p)
	}
	buf2 := []byte{5, 6, 7, 8}
	s.SetPayload(7, buf2)
	buf2[3] = 42
	if p, _ := s.Payload(7); p[3] != 8 {
		t.Errorf("stash aliased the SetPayload buffer: got %v", p)
	}
	// Self-aliasing: writing a block's own live payload back is a no-op.
	p, _ := s.Payload(7)
	s.SetPayload(7, p)
	if got, _ := s.Payload(7); !bytes.Equal(got, []byte{5, 6, 7, 8}) {
		t.Errorf("self-aliased SetPayload corrupted payload: %v", got)
	}
}
