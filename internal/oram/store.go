package oram

import (
	"fmt"
	"sync"

	"repro/internal/crypto"
)

// Store is the server-storage abstraction: the paper's server_storage
// component, i.e. the CPU DRAM holding the ORAM tree. Every address sent to
// a Store is considered visible to the adversary; obliviousness is the
// client's job, not the store's.
//
// Bucket granularity (rather than whole-path granularity) is exposed so
// that the fat-tree, the RingORAM variant (which reads a single slot per
// bucket) and the remote TCP server can all share one interface.
//
// Implementations must be safe for use by a single client goroutine;
// concurrent use requires external synchronisation except where noted.
type Store interface {
	// Geometry returns the tree shape this store was built for.
	Geometry() *Geometry

	// ReadBucket reads all slots of the bucket (level, node) into dst,
	// which must have length BucketSize(level). Payloads do not alias
	// server storage (or are nil for metadata-only stores); a store MAY
	// read/decrypt a payload into the capacity of the dst slot's existing
	// Payload slice instead of allocating, so callers that retain payload
	// bytes beyond the next read of the same buffer must copy them (the
	// client's stash copies on Put).
	ReadBucket(level int, node uint64, dst []Slot) error

	// WriteBucket overwrites all slots of the bucket (level, node) from
	// src, which must have length BucketSize(level).
	WriteBucket(level int, node uint64, src []Slot) error

	// ReadSlot reads a single slot. RingORAM's per-bucket single-block
	// reads use this; PathORAM reads whole buckets.
	ReadSlot(level int, node uint64, slot int, dst *Slot) error

	// WriteSlot overwrites a single slot.
	WriteSlot(level int, node uint64, slot int, src Slot) error
}

// BucketRef names one bucket of the tree for batched operations.
type BucketRef struct {
	Level int
	Node  uint64
}

// PathStore is an optional Store extension: move a whole root→leaf path in
// one operation. Remote stores implement it so a path costs one network
// round trip instead of Levels() bucket round trips; the PathORAM client
// uses it transparently when available. dst/src are indexed by level and
// each entry must have length BucketSize(level).
type PathStore interface {
	// ReadPath reads every bucket on the path to leaf into dst.
	ReadPath(leaf Leaf, dst [][]Slot) error
	// WritePath overwrites every bucket on the path to leaf from src.
	WritePath(leaf Leaf, src [][]Slot) error
}

// BatchStore is an optional Store extension: execute several bucket
// operations in one server round trip. The multipath client (batched
// superblock fetch, §IV-A) uses it so the deduplicated bucket union of a
// whole training batch moves in one frame.
type BatchStore interface {
	// ReadBuckets reads refs[i] into dst[i] (len BucketSize(refs[i].Level)).
	ReadBuckets(refs []BucketRef, dst [][]Slot) error
	// WriteBuckets overwrites refs[i] from src[i].
	WriteBuckets(refs []BucketRef, src [][]Slot) error
}

// BatchNative is implemented by forwarding wrappers (CountingStore) to
// report whether batched operations reach a store that natively benefits
// (a remote transport) or are merely unrolled per bucket locally. The
// multipath client skips the batch branch — and its per-call buffer
// allocations — when batching buys nothing underneath. A BatchStore that
// does not implement this probe is presumed native.
type BatchNative interface {
	BatchNative() bool
}

// batchWorthwhile reports whether st's BatchStore implementation reaches a
// native batching transport.
func batchWorthwhile(st Store) bool {
	if bn, ok := st.(BatchNative); ok {
		return bn.BatchNative()
	}
	_, ok := st.(BatchStore)
	return ok
}

// bucketRange validates bucket coordinates against g.
func bucketRange(g *Geometry, level int, node uint64) error {
	if level < 0 || level >= g.Levels() {
		return fmt.Errorf("oram: level %d out of range [0,%d)", level, g.Levels())
	}
	if node >= 1<<uint(level) {
		return fmt.Errorf("oram: node %d out of range at level %d", node, level)
	}
	return nil
}

// MetaStore is a metadata-only server storage: it records, for every slot,
// only the block ID and assigned leaf (16 bytes/slot) and simulates the
// payload. This is what makes the paper's full-scale configurations (8M–16M
// entries, multi-GB trees) runnable on a laptop: the traffic, stash and
// eviction behaviour is identical to a payload-bearing store because client
// decisions never depend on payload bytes.
type MetaStore struct {
	geom *Geometry
	ids  []uint64 // BlockID per linear slot
	leaf []uint64 // Leaf per linear slot
}

var _ Store = (*MetaStore)(nil)

// NewMetaStore allocates a metadata-only store with every slot a dummy.
func NewMetaStore(g *Geometry) *MetaStore {
	n := g.TotalSlots()
	st := &MetaStore{
		geom: g,
		ids:  make([]uint64, n),
		leaf: make([]uint64, n),
	}
	for i := range st.ids {
		st.ids[i] = uint64(DummyID)
	}
	return st
}

// Geometry implements Store.
func (st *MetaStore) Geometry() *Geometry { return st.geom }

// ReadBucket implements Store.
func (st *MetaStore) ReadBucket(level int, node uint64, dst []Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	z := st.geom.BucketSize(level)
	if len(dst) != z {
		return fmt.Errorf("oram: ReadBucket dst len %d != bucket size %d", len(dst), z)
	}
	base := st.geom.SlotIndex(level, node, 0)
	for i := 0; i < z; i++ {
		dst[i].ID = BlockID(st.ids[base+int64(i)])
		dst[i].Leaf = Leaf(st.leaf[base+int64(i)])
		dst[i].Payload = nil
	}
	return nil
}

// WriteBucket implements Store.
func (st *MetaStore) WriteBucket(level int, node uint64, src []Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	z := st.geom.BucketSize(level)
	if len(src) != z {
		return fmt.Errorf("oram: WriteBucket src len %d != bucket size %d", len(src), z)
	}
	base := st.geom.SlotIndex(level, node, 0)
	for i := 0; i < z; i++ {
		st.ids[base+int64(i)] = uint64(src[i].ID)
		st.leaf[base+int64(i)] = uint64(src[i].Leaf)
	}
	return nil
}

// ReadSlot implements Store.
func (st *MetaStore) ReadSlot(level int, node uint64, slot int, dst *Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	if slot < 0 || slot >= st.geom.BucketSize(level) {
		return fmt.Errorf("oram: slot %d out of range at level %d", slot, level)
	}
	i := st.geom.SlotIndex(level, node, slot)
	dst.ID = BlockID(st.ids[i])
	dst.Leaf = Leaf(st.leaf[i])
	dst.Payload = nil
	return nil
}

// WriteSlot implements Store.
func (st *MetaStore) WriteSlot(level int, node uint64, slot int, src Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	if slot < 0 || slot >= st.geom.BucketSize(level) {
		return fmt.Errorf("oram: slot %d out of range at level %d", slot, level)
	}
	i := st.geom.SlotIndex(level, node, slot)
	st.ids[i] = uint64(src.ID)
	st.leaf[i] = uint64(src.Leaf)
	return nil
}

// Sealer transforms slot payloads at the storage boundary. The crypto
// package provides an AES-CTR implementation; the interface keeps the
// serial seal/open contract implementation-agnostic. (The parallel fast
// path below is specific to crypto.Sealer's counter-reservation
// discipline, so PayloadStore now imports crypto for it; any Sealer still
// works serially.)
type Sealer interface {
	// SealedSize returns the on-server size of a sealed payload of the
	// given plaintext size.
	SealedSize(plain int) int
	// Seal encrypts plain (exactly the configured block size) into a
	// fresh ciphertext slice.
	Seal(plain []byte) ([]byte, error)
	// Open decrypts sealed in place of a fresh plaintext slice.
	Open(sealed []byte) ([]byte, error)
}

// InplaceSealer is an optional Sealer extension: seal/open into
// caller-provided buffers. PayloadStore uses it to encrypt directly into
// its ciphertext arena and decrypt directly into the client's read buffers,
// removing the make-per-slot from the hot path. crypto.Sealer implements
// it.
type InplaceSealer interface {
	Sealer
	// SealTo encrypts plain into dst (len SealedSize(len(plain))).
	SealTo(dst, plain []byte) error
	// OpenTo authenticates and decrypts sealed into dst
	// (len(sealed) - overhead bytes).
	OpenTo(dst, sealed []byte) error
}

// PayloadStore is a payload-bearing in-memory server storage. Slot metadata
// (ID, leaf) is kept alongside a byte arena holding fixed-size payloads.
// With a Sealer installed the arena holds ciphertext and payloads are
// sealed/opened at the Read/Write boundary, mimicking a client that only
// ever hands ciphertext to the untrusted server.
type PayloadStore struct {
	geom   *Geometry
	ids    []uint64
	leaf   []uint64
	arena  []byte
	stride int // bytes per slot in the arena
	sealer Sealer
	// inplace is sealer's in-place fast path, probed once at construction:
	// seal straight into the arena, open straight into the caller's
	// buffer.
	inplace InplaceSealer
	// zero is the reusable zero payload written for real blocks loaded
	// with a nil payload ("zero-filled row").
	zero []byte

	// pool, when installed via SetCryptoPool with more than one worker,
	// fans the seal/open work of path- and batch-granularity operations
	// across forks — per-worker crypto.Sealer clones sharing one counter
	// space. forks[0] is the store's own sealer (chunk 0 runs on the
	// calling goroutine); nil pool keeps every path strictly serial.
	pool  *crypto.Pool
	forks []*crypto.Sealer
	// sealOrd[i] is the scratch prefix count of real (counter-consuming)
	// slots in buckets [0, i) of the current SealRange; pathRefs is the
	// reusable path→bucket-refs conversion of ReadPath/WritePath.
	sealOrd  []int
	pathRefs []BucketRef
}

var _ Store = (*PayloadStore)(nil)

// NewPayloadStore allocates a payload-bearing store with every slot a dummy.
// If sealer is non-nil all payloads are stored sealed.
func NewPayloadStore(g *Geometry, sealer Sealer) (*PayloadStore, error) {
	if g.BlockSize() <= 0 {
		return nil, fmt.Errorf("oram: PayloadStore requires BlockSize > 0, got %d", g.BlockSize())
	}
	stride := g.BlockSize()
	if sealer != nil {
		stride = sealer.SealedSize(g.BlockSize())
	}
	n := g.TotalSlots()
	bytes := n * int64(stride)
	const maxArena = int64(8) << 30
	if bytes > maxArena {
		return nil, fmt.Errorf("oram: PayloadStore would need %d bytes (> %d); use MetaStore for paper-scale sweeps", bytes, maxArena)
	}
	st := &PayloadStore{
		geom:   g,
		ids:    make([]uint64, n),
		leaf:   make([]uint64, n),
		arena:  make([]byte, bytes),
		stride: stride,
		sealer: sealer,
		zero:   make([]byte, g.BlockSize()),
	}
	if is, ok := sealer.(InplaceSealer); ok {
		st.inplace = is
	}
	for i := range st.ids {
		st.ids[i] = uint64(DummyID)
	}
	return st, nil
}

// Geometry implements Store.
func (st *PayloadStore) Geometry() *Geometry { return st.geom }

func (st *PayloadStore) slotBytes(i int64) []byte {
	return st.arena[i*int64(st.stride) : (i+1)*int64(st.stride)]
}

// payloadDst returns a write target of exactly blockSize bytes, reusing
// the capacity of the caller's existing Payload slice when it is big
// enough (the ReadBucket contract) and allocating otherwise.
func payloadDst(dst *Slot, blockSize int) []byte {
	if cap(dst.Payload) >= blockSize {
		return dst.Payload[:blockSize]
	}
	return make([]byte, blockSize)
}

func (st *PayloadStore) readSlotAt(i int64, dst *Slot) error {
	dst.ID = BlockID(st.ids[i])
	dst.Leaf = Leaf(st.leaf[i])
	if dst.ID == DummyID {
		dst.Payload = nil
		return nil
	}
	raw := st.slotBytes(i)
	bs := st.geom.BlockSize()
	if st.inplace != nil {
		out := payloadDst(dst, bs)
		if err := st.inplace.OpenTo(out, raw); err != nil {
			return fmt.Errorf("oram: open slot %d: %w", i, err)
		}
		dst.Payload = out
		return nil
	}
	if st.sealer != nil {
		plain, err := st.sealer.Open(raw)
		if err != nil {
			return fmt.Errorf("oram: open slot %d: %w", i, err)
		}
		dst.Payload = plain
		return nil
	}
	out := payloadDst(dst, bs)
	copy(out, raw)
	dst.Payload = out
	return nil
}

func (st *PayloadStore) writeSlotAt(i int64, src Slot) error {
	st.ids[i] = uint64(src.ID)
	st.leaf[i] = uint64(src.Leaf)
	raw := st.slotBytes(i)
	if src.ID == DummyID {
		// Dummy payloads are zeroed (a real deployment stores fresh
		// random ciphertext; the distinction is invisible to the
		// client logic we are measuring).
		for j := range raw {
			raw[j] = 0
		}
		return nil
	}
	if src.Payload == nil {
		// A real block with no payload means "zero-filled row" (e.g.
		// bulk loads that only care about placement).
		src.Payload = st.zero
	}
	if len(src.Payload) != st.geom.BlockSize() {
		return fmt.Errorf("oram: payload len %d != block size %d", len(src.Payload), st.geom.BlockSize())
	}
	if st.inplace != nil {
		if err := st.inplace.SealTo(raw, src.Payload); err != nil {
			return fmt.Errorf("oram: seal slot %d: %w", i, err)
		}
		return nil
	}
	if st.sealer != nil {
		sealed, err := st.sealer.Seal(src.Payload)
		if err != nil {
			return fmt.Errorf("oram: seal slot %d: %w", i, err)
		}
		copy(raw, sealed)
		return nil
	}
	copy(raw, src.Payload)
	return nil
}

// SetCryptoPool installs a bounded crypto worker pool: the seal/open work
// of path- and batch-granularity operations (ReadPath/WritePath,
// ReadBuckets/WriteBuckets and the OpenRange/SealRange primitives under
// them) is partitioned across the pool's workers, each running through its
// own Sealer clone. Requires the store to have been built with a
// *crypto.Sealer — the fan-out leans on its counter-reservation discipline
// for determinism — and must not be called concurrently with store
// operations. A nil pool (or one with a single worker) keeps today's
// strictly serial behaviour.
func (st *PayloadStore) SetCryptoPool(p *crypto.Pool) error {
	if p == nil || p.Workers() == 1 {
		st.pool = nil
		st.forks = nil
		return nil
	}
	base, ok := st.sealer.(*crypto.Sealer)
	if !ok {
		return fmt.Errorf("oram: SetCryptoPool requires a *crypto.Sealer (store has %T)", st.sealer)
	}
	st.pool = p
	st.forks = make([]*crypto.Sealer, p.Workers())
	st.forks[0] = base
	for i := 1; i < len(st.forks); i++ {
		st.forks[i] = base.Clone()
	}
	return nil
}

// openSlotAt is readSlotAt decrypting through the given worker sealer
// instead of the store's own (the parallel fan-out path; forks are only
// installed for in-place crypto sealers).
func (st *PayloadStore) openSlotAt(is InplaceSealer, i int64, dst *Slot) error {
	dst.ID = BlockID(st.ids[i])
	dst.Leaf = Leaf(st.leaf[i])
	if dst.ID == DummyID {
		dst.Payload = nil
		return nil
	}
	out := payloadDst(dst, st.geom.BlockSize())
	if err := is.OpenTo(out, st.slotBytes(i)); err != nil {
		return fmt.Errorf("oram: open slot %d: %w", i, err)
	}
	dst.Payload = out
	return nil
}

// sealSlotSeq is writeSlotAt sealing through the given worker sealer with
// an explicitly reserved counter sequence (the parallel fan-out path).
func (st *PayloadStore) sealSlotSeq(f *crypto.Sealer, i int64, src Slot, seq uint64) error {
	st.ids[i] = uint64(src.ID)
	st.leaf[i] = uint64(src.Leaf)
	raw := st.slotBytes(i)
	if src.ID == DummyID {
		for j := range raw {
			raw[j] = 0
		}
		return nil
	}
	if src.Payload == nil {
		src.Payload = st.zero
	}
	if len(src.Payload) != st.geom.BlockSize() {
		return fmt.Errorf("oram: payload len %d != block size %d", len(src.Payload), st.geom.BlockSize())
	}
	if err := f.SealSeqTo(raw, src.Payload, seq); err != nil {
		return fmt.Errorf("oram: seal slot %d: %w", i, err)
	}
	return nil
}

// checkRange validates a bucket-range request against the geometry.
func (st *PayloadStore) checkRange(op string, refs []BucketRef, bufs [][]Slot) error {
	if len(refs) != len(bufs) {
		return fmt.Errorf("oram: %s got %d refs, %d buffers", op, len(refs), len(bufs))
	}
	for i, r := range refs {
		if err := bucketRange(st.geom, r.Level, r.Node); err != nil {
			return err
		}
		if z := st.geom.BucketSize(r.Level); len(bufs[i]) != z {
			return fmt.Errorf("oram: %s buffer %d has %d slots, bucket size is %d", op, i, len(bufs[i]), z)
		}
	}
	return nil
}

// OpenRange reads (and, for sealed stores, decrypts) the buckets refs[i]
// into dst[i], partitioning the buckets across the crypto pool's workers
// when one is installed — per-slot AEAD records are independent, so opening
// is embarrassingly parallel and the result is identical to the serial
// loop regardless of scheduling. Without a pool it is exactly that serial
// loop.
func (st *PayloadStore) OpenRange(refs []BucketRef, dst [][]Slot) error {
	if err := st.checkRange("OpenRange", refs, dst); err != nil {
		return err
	}
	if st.pool == nil || len(refs) < 2 {
		for i, r := range refs {
			base := st.geom.SlotIndex(r.Level, r.Node, 0)
			for k := range dst[i] {
				if err := st.readSlotAt(base+int64(k), &dst[i][k]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return st.pool.Run(len(refs), func(chunk, lo, hi int) error {
		f := st.forks[chunk]
		for i := lo; i < hi; i++ {
			base := st.geom.SlotIndex(refs[i].Level, refs[i].Node, 0)
			buf := dst[i]
			for k := range buf {
				if err := st.openSlotAt(f, base+int64(k), &buf[k]); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// SealRange overwrites the buckets refs[i] from src[i], partitioning the
// seal work across the crypto pool's workers when one is installed.
// Counter space for every real slot is reserved up front in (bucket, slot)
// order, so each slot's IV — and hence the ciphertext arena — is
// byte-identical to sealing the same slots serially, no matter which
// worker runs which bucket. Without a pool it is exactly the serial loop.
func (st *PayloadStore) SealRange(refs []BucketRef, src [][]Slot) error {
	if err := st.checkRange("SealRange", refs, src); err != nil {
		return err
	}
	if st.pool == nil || len(refs) < 2 {
		for i, r := range refs {
			base := st.geom.SlotIndex(r.Level, r.Node, 0)
			for k := range src[i] {
				if err := st.writeSlotAt(base+int64(k), src[i][k]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Prefix counts of counter-consuming (real) slots give every bucket
	// its deterministic ordinal into the reservation.
	st.sealOrd = st.sealOrd[:0]
	total := 0
	for i := range refs {
		st.sealOrd = append(st.sealOrd, total)
		for k := range src[i] {
			if src[i][k].ID != DummyID {
				total++
			}
		}
	}
	bs := st.geom.BlockSize()
	first := st.forks[0].ReserveSeals(total, bs)
	blocks := uint64(crypto.CounterBlocks(bs))
	return st.pool.Run(len(refs), func(chunk, lo, hi int) error {
		f := st.forks[chunk]
		for i := lo; i < hi; i++ {
			base := st.geom.SlotIndex(refs[i].Level, refs[i].Node, 0)
			ord := uint64(st.sealOrd[i])
			for k := range src[i] {
				s := src[i][k]
				seq := first + ord*blocks
				if s.ID != DummyID {
					ord++
				}
				if err := st.sealSlotSeq(f, base+int64(k), s, seq); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// pathToRefs converts a root→leaf path to its bucket refs in level order,
// reusing the store's scratch.
func (st *PayloadStore) pathToRefs(leaf Leaf) []BucketRef {
	st.pathRefs = st.pathRefs[:0]
	for lvl := 0; lvl < st.geom.Levels(); lvl++ {
		st.pathRefs = append(st.pathRefs, BucketRef{Level: lvl, Node: st.geom.NodeAt(leaf, lvl)})
	}
	return st.pathRefs
}

// ReadPath implements PathStore: the whole path's slots open through
// OpenRange (parallel across the crypto pool when installed; the plain
// level-by-level loop otherwise, with identical results).
func (st *PayloadStore) ReadPath(leaf Leaf, dst [][]Slot) error {
	if !st.geom.ValidLeaf(leaf) {
		return fmt.Errorf("oram: ReadPath: invalid leaf %d", leaf)
	}
	if len(dst) != st.geom.Levels() {
		return fmt.Errorf("oram: ReadPath dst has %d levels, tree has %d", len(dst), st.geom.Levels())
	}
	return st.OpenRange(st.pathToRefs(leaf), dst)
}

// WritePath implements PathStore (see ReadPath; sealing goes through
// SealRange).
func (st *PayloadStore) WritePath(leaf Leaf, src [][]Slot) error {
	if !st.geom.ValidLeaf(leaf) {
		return fmt.Errorf("oram: WritePath: invalid leaf %d", leaf)
	}
	if len(src) != st.geom.Levels() {
		return fmt.Errorf("oram: WritePath src has %d levels, tree has %d", len(src), st.geom.Levels())
	}
	return st.SealRange(st.pathToRefs(leaf), src)
}

// ReadBuckets implements BatchStore.
func (st *PayloadStore) ReadBuckets(refs []BucketRef, dst [][]Slot) error {
	return st.OpenRange(refs, dst)
}

// WriteBuckets implements BatchStore.
func (st *PayloadStore) WriteBuckets(refs []BucketRef, src [][]Slot) error {
	return st.SealRange(refs, src)
}

// BatchNative implements the BatchNative probe: batching a local payload
// store is worthwhile exactly when a multi-worker crypto pool can fan the
// union's seal/open work out (otherwise the per-bucket unrolled path is
// strictly cheaper — no batch buffers to fill).
func (st *PayloadStore) BatchNative() bool {
	return st.pool != nil
}

// ReadBucket implements Store.
func (st *PayloadStore) ReadBucket(level int, node uint64, dst []Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	z := st.geom.BucketSize(level)
	if len(dst) != z {
		return fmt.Errorf("oram: ReadBucket dst len %d != bucket size %d", len(dst), z)
	}
	base := st.geom.SlotIndex(level, node, 0)
	for i := 0; i < z; i++ {
		if err := st.readSlotAt(base+int64(i), &dst[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBucket implements Store.
func (st *PayloadStore) WriteBucket(level int, node uint64, src []Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	z := st.geom.BucketSize(level)
	if len(src) != z {
		return fmt.Errorf("oram: WriteBucket src len %d != bucket size %d", len(src), z)
	}
	base := st.geom.SlotIndex(level, node, 0)
	for i := 0; i < z; i++ {
		if err := st.writeSlotAt(base+int64(i), src[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSlot implements Store.
func (st *PayloadStore) ReadSlot(level int, node uint64, slot int, dst *Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	if slot < 0 || slot >= st.geom.BucketSize(level) {
		return fmt.Errorf("oram: slot %d out of range at level %d", slot, level)
	}
	return st.readSlotAt(st.geom.SlotIndex(level, node, slot), dst)
}

// WriteSlot implements Store.
func (st *PayloadStore) WriteSlot(level int, node uint64, slot int, src Slot) error {
	if err := bucketRange(st.geom, level, node); err != nil {
		return err
	}
	if slot < 0 || slot >= st.geom.BucketSize(level) {
		return fmt.Errorf("oram: slot %d out of range at level %d", slot, level)
	}
	return st.writeSlotAt(st.geom.SlotIndex(level, node, slot), src)
}

// Counters aggregates server-side traffic statistics: exactly what the
// adversary on the memory bus could tally, and the raw material for the
// paper's Fig. 9 (traffic reduction) and Table II (dummy reads, counted by
// the client into AccessStats).
type Counters struct {
	BucketReads  uint64
	BucketWrites uint64
	SlotReads    uint64 // slots transferred by reads
	SlotWrites   uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Total returns total slots and bytes moved in both directions.
func (c *Counters) Total() (slots, bytes uint64) {
	return c.SlotReads + c.SlotWrites, c.BytesRead + c.BytesWritten
}

// Sub returns the difference c - prev, for windowed measurements.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		BucketReads:  c.BucketReads - prev.BucketReads,
		BucketWrites: c.BucketWrites - prev.BucketWrites,
		SlotReads:    c.SlotReads - prev.SlotReads,
		SlotWrites:   c.SlotWrites - prev.SlotWrites,
		BytesRead:    c.BytesRead - prev.BytesRead,
		BytesWritten: c.BytesWritten - prev.BytesWritten,
	}
}

// CountingStore wraps a Store and tallies traffic. It is also the hook for
// the memsim timing model: if a Ticker is installed every transfer charges
// simulated time.
type CountingStore struct {
	inner Store
	c     Counters
	tick  Ticker
	mu    sync.Mutex // protects c; remote server may count concurrently
}

// Ticker receives byte-level transfer events; memsim.Meter implements it.
type Ticker interface {
	// OnTransfer is called once per bucket read/write with the bytes moved.
	OnTransfer(bytes int)
}

var _ Store = (*CountingStore)(nil)

// NewCountingStore wraps inner. tick may be nil.
func NewCountingStore(inner Store, tick Ticker) *CountingStore {
	return &CountingStore{inner: inner, tick: tick}
}

// Geometry implements Store.
func (cs *CountingStore) Geometry() *Geometry { return cs.inner.Geometry() }

// Counters returns a snapshot of the traffic counters.
func (cs *CountingStore) Counters() Counters {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.c
}

// ResetCounters zeroes the traffic counters.
func (cs *CountingStore) ResetCounters() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.c = Counters{}
}

func (cs *CountingStore) charge(read, bucketOp bool, slots int, bytes int) {
	cs.mu.Lock()
	if read {
		if bucketOp {
			cs.c.BucketReads++
		}
		cs.c.SlotReads += uint64(slots)
		cs.c.BytesRead += uint64(bytes)
	} else {
		if bucketOp {
			cs.c.BucketWrites++
		}
		cs.c.SlotWrites += uint64(slots)
		cs.c.BytesWritten += uint64(bytes)
	}
	cs.mu.Unlock()
	if cs.tick != nil {
		cs.tick.OnTransfer(bytes)
	}
}

// ReadBucket implements Store.
func (cs *CountingStore) ReadBucket(level int, node uint64, dst []Slot) error {
	if err := cs.inner.ReadBucket(level, node, dst); err != nil {
		return err
	}
	cs.charge(true, true, len(dst), len(dst)*cs.Geometry().BlockSize())
	return nil
}

// WriteBucket implements Store.
func (cs *CountingStore) WriteBucket(level int, node uint64, src []Slot) error {
	if err := cs.inner.WriteBucket(level, node, src); err != nil {
		return err
	}
	cs.charge(false, true, len(src), len(src)*cs.Geometry().BlockSize())
	return nil
}

// ReadPath implements PathStore: delegate when the inner store can move a
// whole path at once, fall back to per-bucket reads otherwise. Counter
// charges are identical either way (one bucket read per level), so the
// traffic ledger does not depend on which transport is underneath.
func (cs *CountingStore) ReadPath(leaf Leaf, dst [][]Slot) error {
	g := cs.Geometry()
	if len(dst) != g.Levels() {
		return fmt.Errorf("oram: ReadPath dst has %d levels, tree has %d", len(dst), g.Levels())
	}
	if ps, ok := cs.inner.(PathStore); ok {
		if err := ps.ReadPath(leaf, dst); err != nil {
			return err
		}
		bs := g.BlockSize()
		for _, b := range dst {
			cs.charge(true, true, len(b), len(b)*bs)
		}
		return nil
	}
	if !g.ValidLeaf(leaf) {
		return fmt.Errorf("oram: ReadPath: invalid leaf %d", leaf)
	}
	for lvl := range dst {
		if err := cs.ReadBucket(lvl, g.NodeAt(leaf, lvl), dst[lvl]); err != nil {
			return err
		}
	}
	return nil
}

// WritePath implements PathStore (see ReadPath for the delegation rule).
func (cs *CountingStore) WritePath(leaf Leaf, src [][]Slot) error {
	g := cs.Geometry()
	if len(src) != g.Levels() {
		return fmt.Errorf("oram: WritePath src has %d levels, tree has %d", len(src), g.Levels())
	}
	if ps, ok := cs.inner.(PathStore); ok {
		if err := ps.WritePath(leaf, src); err != nil {
			return err
		}
		bs := g.BlockSize()
		for _, b := range src {
			cs.charge(false, true, len(b), len(b)*bs)
		}
		return nil
	}
	if !g.ValidLeaf(leaf) {
		return fmt.Errorf("oram: WritePath: invalid leaf %d", leaf)
	}
	for lvl := range src {
		if err := cs.WriteBucket(lvl, g.NodeAt(leaf, lvl), src[lvl]); err != nil {
			return err
		}
	}
	return nil
}

// BatchNative implements the BatchNative probe: batching is worthwhile
// exactly when the wrapped store batches natively.
func (cs *CountingStore) BatchNative() bool {
	return batchWorthwhile(cs.inner)
}

// ReadBuckets implements BatchStore.
func (cs *CountingStore) ReadBuckets(refs []BucketRef, dst [][]Slot) error {
	if len(refs) != len(dst) {
		return fmt.Errorf("oram: ReadBuckets got %d refs, %d buffers", len(refs), len(dst))
	}
	if bs, ok := cs.inner.(BatchStore); ok {
		if err := bs.ReadBuckets(refs, dst); err != nil {
			return err
		}
		blockSize := cs.Geometry().BlockSize()
		for _, b := range dst {
			cs.charge(true, true, len(b), len(b)*blockSize)
		}
		return nil
	}
	for i, r := range refs {
		if err := cs.ReadBucket(r.Level, r.Node, dst[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBuckets implements BatchStore.
func (cs *CountingStore) WriteBuckets(refs []BucketRef, src [][]Slot) error {
	if len(refs) != len(src) {
		return fmt.Errorf("oram: WriteBuckets got %d refs, %d buffers", len(refs), len(src))
	}
	if bs, ok := cs.inner.(BatchStore); ok {
		if err := bs.WriteBuckets(refs, src); err != nil {
			return err
		}
		blockSize := cs.Geometry().BlockSize()
		for _, b := range src {
			cs.charge(false, true, len(b), len(b)*blockSize)
		}
		return nil
	}
	for i, r := range refs {
		if err := cs.WriteBucket(r.Level, r.Node, src[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSlot implements Store.
func (cs *CountingStore) ReadSlot(level int, node uint64, slot int, dst *Slot) error {
	if err := cs.inner.ReadSlot(level, node, slot, dst); err != nil {
		return err
	}
	cs.charge(true, false, 1, cs.Geometry().BlockSize())
	return nil
}

// WriteSlot implements Store.
func (cs *CountingStore) WriteSlot(level int, node uint64, slot int, src Slot) error {
	if err := cs.inner.WriteSlot(level, node, slot, src); err != nil {
		return err
	}
	cs.charge(false, false, 1, cs.Geometry().BlockSize())
	return nil
}
