package oram

import (
	"math/rand"
	"testing"
)

func TestStashBasics(t *testing.T) {
	s := NewStash()
	if s.Len() != 0 || s.Peak() != 0 {
		t.Fatal("new stash not empty")
	}
	if err := s.Put(DummyID, 0, nil); err == nil {
		t.Error("dummy accepted into stash")
	}
	if err := s.Put(5, 3, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(9, 1, nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Peak() != 2 {
		t.Errorf("len=%d peak=%d, want 2/2", s.Len(), s.Peak())
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Error("Contains wrong")
	}
	if l, ok := s.Leaf(5); !ok || l != 3 {
		t.Errorf("Leaf(5) = %d,%v", l, ok)
	}
	if _, ok := s.Leaf(1234); ok {
		t.Error("Leaf of absent block reported present")
	}
	if p, ok := s.Payload(5); !ok || len(p) != 1 || p[0] != 1 {
		t.Errorf("Payload(5) = %v,%v", p, ok)
	}
	if !s.SetLeaf(5, 7) {
		t.Error("SetLeaf failed")
	}
	if l, _ := s.Leaf(5); l != 7 {
		t.Errorf("leaf after SetLeaf = %d", l)
	}
	if s.SetLeaf(77, 0) || s.SetPayload(77, nil) {
		t.Error("mutators on absent block succeeded")
	}
	// Re-put updates in place without growing.
	if err := s.Put(5, 2, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("re-put grew stash to %d", s.Len())
	}
	s.Remove(5)
	if s.Contains(5) || s.Len() != 1 {
		t.Error("Remove failed")
	}
	if s.Peak() != 2 {
		t.Errorf("peak lost: %d", s.Peak())
	}
	s.ResetPeak()
	if s.Peak() != 1 {
		t.Errorf("ResetPeak: %d", s.Peak())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != 9 {
		t.Errorf("IDs = %v", ids)
	}
	n := 0
	s.ForEach(func(id BlockID, leaf Leaf) { n++ })
	if n != 1 {
		t.Errorf("ForEach visited %d", n)
	}
}

// TestEvictPlanRespectsConstraints checks the two safety properties of the
// greedy write-back plan: bucket capacities are honoured, and a block is
// only planned at a level where its assigned path and the target path share
// a node.
func TestEvictPlanRespectsConstraints(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 6, LeafZ: 2, BlockSize: 0})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewStash()
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			id := BlockID(rng.Intn(1000))
			leaf := Leaf(rng.Int63n(int64(g.Leaves())))
			if err := s.Put(id, leaf, nil); err != nil {
				t.Fatal(err)
			}
		}
		target := Leaf(rng.Int63n(int64(g.Leaves())))
		plan := s.evictPlan(g, target)
		if len(plan) != g.Levels() {
			t.Fatalf("plan has %d levels, want %d", len(plan), g.Levels())
		}
		seen := make(map[BlockID]bool)
		for lvl, ids := range plan {
			if len(ids) > g.BucketSize(lvl) {
				t.Fatalf("level %d overfilled: %d > %d", lvl, len(ids), g.BucketSize(lvl))
			}
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("block %d planned twice", id)
				}
				seen[id] = true
				bl, ok := s.Leaf(id)
				if !ok {
					t.Fatalf("planned block %d not in stash", id)
				}
				if g.CommonLevel(target, bl) < lvl {
					t.Fatalf("block %d (leaf %d) planned too deep (level %d, common %d)",
						id, bl, lvl, g.CommonLevel(target, bl))
				}
			}
		}
	}
}

// TestEvictPlanGreedyDepth: with one block whose leaf equals the target and
// room everywhere, the plan must place it at the deepest (leaf) level.
func TestEvictPlanGreedyDepth(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 2, BlockSize: 0})
	s := NewStash()
	if err := s.Put(1, 9, nil); err != nil {
		t.Fatal(err)
	}
	plan := s.evictPlan(g, 9)
	if len(plan[g.LeafBits()]) != 1 || plan[g.LeafBits()][0] != 1 {
		t.Errorf("block not placed at leaf: %v", plan)
	}
	// A block with no common prefix with the target can only go at root.
	s2 := NewStash()
	if err := s2.Put(2, 0x0, nil); err != nil { // leaf 0b0000
		t.Fatal(err)
	}
	plan2 := s2.evictPlan(g, 0x8) // leaf 0b1000: disagree at level 1
	if len(plan2[0]) != 1 {
		t.Errorf("expected root placement, got %v", plan2)
	}
	for lvl := 1; lvl < g.Levels(); lvl++ {
		if len(plan2[lvl]) != 0 {
			t.Errorf("level %d unexpectedly used: %v", lvl, plan2[lvl])
		}
	}
}

// TestEvictPlanSpill: overfill the deepest level and verify the overflow
// spills toward the root instead of being dropped.
func TestEvictPlanSpill(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 3, LeafZ: 1, BlockSize: 0})
	s := NewStash()
	// Four blocks all assigned exactly the target leaf; leaf bucket holds
	// one, so three must spill upward across levels 2,1,0.
	for i := BlockID(0); i < 4; i++ {
		if err := s.Put(i, 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	plan := s.evictPlan(g, 5)
	total := 0
	for lvl, ids := range plan {
		if len(ids) > g.BucketSize(lvl) {
			t.Fatalf("level %d overfilled", lvl)
		}
		total += len(ids)
	}
	if total != 4 {
		t.Errorf("placed %d of 4 blocks", total)
	}
}

// TestEvictPlanDeterministic: two stashes with identical contents must
// produce identical plans (map iteration order must not leak through).
func TestEvictPlanDeterministic(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 5, LeafZ: 2, BlockSize: 0})
	build := func(order []int) *Stash {
		s := NewStash()
		for _, i := range order {
			if err := s.Put(BlockID(i), Leaf(i*7%32), nil); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	fwd := make([]int, 64)
	rev := make([]int, 64)
	for i := range fwd {
		fwd[i] = i
		rev[i] = 63 - i
	}
	p1 := build(fwd).evictPlan(g, 13)
	p2 := build(rev).evictPlan(g, 13)
	for lvl := range p1 {
		if len(p1[lvl]) != len(p2[lvl]) {
			t.Fatalf("level %d: lengths differ", lvl)
		}
		for i := range p1[lvl] {
			if p1[lvl][i] != p2[lvl][i] {
				t.Fatalf("level %d slot %d: %d vs %d", lvl, i, p1[lvl][i], p2[lvl][i])
			}
		}
	}
}
