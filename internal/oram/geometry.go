package oram

import (
	"fmt"
	"math/bits"
)

// Profile selects how bucket capacity varies with tree level. The paper's
// baseline PathORAM uses a uniform profile; §V introduces the fat-tree
// (linear decay from a wide root to narrow leaves). Step and capped
// exponential profiles are provided for the ablation studies called out in
// DESIGN.md (§V notes that ideally growth would be exponential toward the
// root but adopts linear growth as the practical choice).
type Profile uint8

const (
	// ProfileUniform gives every bucket LeafZ slots (the normal binary
	// tree of PathORAM and PrORAM).
	ProfileUniform Profile = iota
	// ProfileLinear interpolates bucket capacity linearly from RootZ at
	// the root down to LeafZ at the leaves — the paper's fat-tree: with
	// LeafZ=5 and 6 levels the sizes are 10,9,8,7,6,5 (§V).
	ProfileLinear
	// ProfileStep uses RootZ for the top half of the levels and LeafZ for
	// the bottom half (ablation abl-profile).
	ProfileStep
	// ProfileExp doubles capacity per level walking up from the leaves,
	// capped at RootZ (ablation abl-profile; approximates the
	// "ideal" exponential growth §V mentions and rejects).
	ProfileExp
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case ProfileUniform:
		return "uniform"
	case ProfileLinear:
		return "linear"
	case ProfileStep:
		return "step"
	case ProfileExp:
		return "exp"
	default:
		return fmt.Sprintf("Profile(%d)", uint8(p))
	}
}

// Geometry describes the shape of an ORAM tree: its depth and the bucket
// capacity at every level. Level 0 is the root; level Levels()-1 holds the
// leaves (the paper's "level L"). All stores, clients and the RingORAM
// variant share this one description of server storage layout.
type Geometry struct {
	leafBits   int     // log2(number of leaves); tree has leafBits+1 levels
	bucketSize []int   // capacity per level, len == leafBits+1
	levelOff   []int64 // linear slot offset of the first slot of each level
	totalSlots int64
	blockSize  int // payload bytes per block (used for byte accounting)
	profile    Profile
}

// GeometryConfig collects the knobs for building a Geometry.
type GeometryConfig struct {
	// LeafBits is log2 of the leaf count. A table of N blocks needs
	// LeafBits >= ceil(log2(N)) for the standard PathORAM stash bound.
	LeafBits int
	// LeafZ is the bucket capacity at the leaf level (paper default 4).
	LeafZ int
	// RootZ is the bucket capacity at the root for non-uniform profiles.
	// Ignored for ProfileUniform. The paper's fat-tree uses RootZ=2*LeafZ;
	// the §VIII-C memory-neutral experiment uses 9→5.
	RootZ int
	// Profile selects the capacity curve.
	Profile Profile
	// BlockSize is the payload size in bytes (128 for DLRM rows, 4096 for
	// XLM-R rows in the paper's configurations).
	BlockSize int
}

// NewGeometry validates cfg and builds the tree shape.
func NewGeometry(cfg GeometryConfig) (*Geometry, error) {
	if cfg.LeafBits < 1 || cfg.LeafBits > 40 {
		return nil, fmt.Errorf("oram: LeafBits %d out of range [1,40]", cfg.LeafBits)
	}
	if cfg.LeafZ < 1 {
		return nil, fmt.Errorf("oram: LeafZ %d must be >= 1", cfg.LeafZ)
	}
	if cfg.BlockSize < 0 {
		return nil, fmt.Errorf("oram: BlockSize %d must be >= 0", cfg.BlockSize)
	}
	if cfg.Profile != ProfileUniform {
		if cfg.RootZ < cfg.LeafZ {
			return nil, fmt.Errorf("oram: RootZ %d must be >= LeafZ %d for profile %v", cfg.RootZ, cfg.LeafZ, cfg.Profile)
		}
	}
	levels := cfg.LeafBits + 1
	g := &Geometry{
		leafBits:   cfg.LeafBits,
		bucketSize: make([]int, levels),
		levelOff:   make([]int64, levels),
		blockSize:  cfg.BlockSize,
		profile:    cfg.Profile,
	}
	L := cfg.LeafBits // index of the leaf level
	for lvl := 0; lvl < levels; lvl++ {
		switch cfg.Profile {
		case ProfileUniform:
			g.bucketSize[lvl] = cfg.LeafZ
		case ProfileLinear:
			// leafZ + round(extra * (L-lvl)/L); root gets RootZ, leaf LeafZ.
			extra := cfg.RootZ - cfg.LeafZ
			g.bucketSize[lvl] = cfg.LeafZ + (extra*(L-lvl)+L/2)/L
		case ProfileStep:
			if lvl < levels/2 {
				g.bucketSize[lvl] = cfg.RootZ
			} else {
				g.bucketSize[lvl] = cfg.LeafZ
			}
		case ProfileExp:
			sz := cfg.LeafZ
			if shift := L - lvl; shift < 30 {
				sz = cfg.LeafZ << shift
			} else {
				sz = cfg.RootZ
			}
			if sz > cfg.RootZ {
				sz = cfg.RootZ
			}
			g.bucketSize[lvl] = sz
		default:
			return nil, fmt.Errorf("oram: unknown profile %v", cfg.Profile)
		}
	}
	var off int64
	for lvl := 0; lvl < levels; lvl++ {
		g.levelOff[lvl] = off
		off += int64(g.bucketSize[lvl]) << uint(lvl)
	}
	g.totalSlots = off
	return g, nil
}

// MustGeometry is NewGeometry that panics on error; for tests and tables of
// known-good configurations.
func MustGeometry(cfg GeometryConfig) *Geometry {
	g, err := NewGeometry(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// LeafBitsFor returns the smallest leafBits such that 2^leafBits >= n,
// the standard PathORAM sizing for n real blocks.
func LeafBitsFor(n uint64) int {
	if n <= 1 {
		return 1
	}
	b := bits.Len64(n - 1)
	if b < 1 {
		b = 1
	}
	return b
}

// Levels returns the number of tree levels (root..leaf inclusive).
func (g *Geometry) Levels() int { return g.leafBits + 1 }

// LeafBits returns log2 of the leaf count.
func (g *Geometry) LeafBits() int { return g.leafBits }

// Leaves returns the number of leaves (= number of distinct paths).
func (g *Geometry) Leaves() uint64 { return 1 << uint(g.leafBits) }

// BucketSize returns the slot capacity of buckets at the given level.
func (g *Geometry) BucketSize(level int) int { return g.bucketSize[level] }

// BlockSize returns the configured payload size in bytes.
func (g *Geometry) BlockSize() int { return g.blockSize }

// Profile returns the capacity profile used to build the geometry.
func (g *Geometry) Profile() Profile { return g.profile }

// TotalSlots returns the total number of block slots in the tree.
func (g *Geometry) TotalSlots() int64 { return g.totalSlots }

// TotalBuckets returns the total number of buckets in the tree.
func (g *Geometry) TotalBuckets() int64 { return (1 << uint(g.leafBits+1)) - 1 }

// ServerBytes returns the server storage requirement in bytes — the
// quantity Table I of the paper reports per configuration.
func (g *Geometry) ServerBytes() int64 { return g.totalSlots * int64(g.blockSize) }

// PathSlots returns the number of slots on one root→leaf path; this is the
// per-access block traffic of a PathORAM read or write.
func (g *Geometry) PathSlots() int {
	n := 0
	for _, z := range g.bucketSize {
		n += z
	}
	return n
}

// PathBytes returns the byte traffic of reading (or writing) one full path.
func (g *Geometry) PathBytes() int64 { return int64(g.PathSlots()) * int64(g.blockSize) }

// NodeAt returns the index within its level of the bucket on the path to
// leaf at the given level: the leading `level` bits of the leaf index.
func (g *Geometry) NodeAt(leaf Leaf, level int) uint64 {
	return uint64(leaf) >> uint(g.leafBits-level)
}

// SlotIndex maps (level, nodeInLevel, slotInBucket) to a linear slot index
// in server storage. Linear indices are stable across the whole tree and
// are what the Store implementations address.
func (g *Geometry) SlotIndex(level int, node uint64, slot int) int64 {
	return g.levelOff[level] + int64(node)*int64(g.bucketSize[level]) + int64(slot)
}

// CommonLevel returns the deepest level at which the paths to leaves a and
// b intersect. Used by the greedy stash write-back: a block assigned to
// leaf b may be written into the path of leaf a at any level <= CommonLevel.
func (g *Geometry) CommonLevel(a, b Leaf) int {
	x := uint64(a) ^ uint64(b)
	if x == 0 {
		return g.leafBits
	}
	return g.leafBits - bits.Len64(x)
}

// ValidLeaf reports whether the leaf index is within range.
func (g *Geometry) ValidLeaf(l Leaf) bool { return uint64(l) < g.Leaves() }

// String summarises the geometry ("tree L=20 Z=4 uniform", "fat L=20 8→4").
func (g *Geometry) String() string {
	if g.profile == ProfileUniform {
		return fmt.Sprintf("tree L=%d Z=%d uniform", g.leafBits, g.bucketSize[0])
	}
	return fmt.Sprintf("tree L=%d Z=%d→%d %v", g.leafBits, g.bucketSize[0], g.bucketSize[g.leafBits], g.profile)
}
