package oram

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// pathCapableStore wraps a PayloadStore with PathStore/BatchStore
// implementations that delegate bucket by bucket — the shape a remote
// store has, without the network. It lets the tests below force the
// client's fast paths and compare them against the bucket-granularity
// reference.
type pathCapableStore struct {
	*PayloadStore
}

func (s *pathCapableStore) ReadPath(leaf Leaf, dst [][]Slot) error {
	g := s.Geometry()
	for lvl := range dst {
		if err := s.ReadBucket(lvl, g.NodeAt(leaf, lvl), dst[lvl]); err != nil {
			return err
		}
	}
	return nil
}

func (s *pathCapableStore) WritePath(leaf Leaf, src [][]Slot) error {
	g := s.Geometry()
	for lvl := range src {
		if err := s.WriteBucket(lvl, g.NodeAt(leaf, lvl), src[lvl]); err != nil {
			return err
		}
	}
	return nil
}

func (s *pathCapableStore) ReadBuckets(refs []BucketRef, dst [][]Slot) error {
	for i, r := range refs {
		if err := s.ReadBucket(r.Level, r.Node, dst[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s *pathCapableStore) WriteBuckets(refs []BucketRef, src [][]Slot) error {
	for i, r := range refs {
		if err := s.WriteBucket(r.Level, r.Node, src[i]); err != nil {
			return err
		}
	}
	return nil
}

// bucketOnlyStore hides any PathStore/BatchStore methods of the wrapped
// store, forcing the client's per-bucket slow path.
type bucketOnlyStore struct {
	inner Store
}

func (s *bucketOnlyStore) Geometry() *Geometry { return s.inner.Geometry() }
func (s *bucketOnlyStore) ReadBucket(level int, node uint64, dst []Slot) error {
	return s.inner.ReadBucket(level, node, dst)
}
func (s *bucketOnlyStore) WriteBucket(level int, node uint64, src []Slot) error {
	return s.inner.WriteBucket(level, node, src)
}
func (s *bucketOnlyStore) ReadSlot(level int, node uint64, slot int, dst *Slot) error {
	return s.inner.ReadSlot(level, node, slot, dst)
}
func (s *bucketOnlyStore) WriteSlot(level int, node uint64, slot int, src Slot) error {
	return s.inner.WriteSlot(level, node, slot, src)
}

// TestPathStoreFastPathEquivalence: a client over a PathStore/BatchStore-
// capable store must behave byte-identically — same payloads, same stats,
// same traffic counters — to a client over the same store with the fast
// paths hidden. This is the foundation of the remote protocol's
// transparency: opReadPath/opWritePath/opBatch change framing, not
// semantics.
func TestPathStoreFastPathEquivalence(t *testing.T) {
	const blocks = 96
	const seed = 31
	build := func(fast bool) (*Client, *CountingStore) {
		g := MustGeometry(GeometryConfig{LeafBits: 5, LeafZ: 4, BlockSize: 16})
		ps, err := NewPayloadStore(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		var inner Store = &pathCapableStore{ps}
		cs := NewCountingStore(inner, nil)
		var top Store = cs
		if !fast {
			top = &bucketOnlyStore{cs}
		}
		c, err := NewClient(ClientConfig{
			Store: top, Rand: rand.New(rand.NewSource(seed)),
			Evict: PaperEvict, StashHits: true, Blocks: blocks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, cs
	}
	fast, fastCS := build(true)
	slow, slowCS := build(false)

	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 400; i++ {
		id := BlockID(rng.Intn(blocks))
		if rng.Intn(3) == 0 {
			v := make([]byte, 16)
			binary.LittleEndian.PutUint64(v, rng.Uint64())
			if err := fast.Write(id, v); err != nil {
				t.Fatal(err)
			}
			if err := slow.Write(id, v); err != nil {
				t.Fatal(err)
			}
		} else {
			a, errA := fast.Read(id)
			b, errB := slow.Read(id)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: error divergence: %v vs %v", i, errA, errB)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("op %d block %d: payload divergence", i, id)
			}
		}
	}
	// Occasionally exercise the multipath (batched) entry points too.
	leaves := []Leaf{1, 5, 9, 5}
	if err := fast.ReadPaths(leaves); err != nil {
		t.Fatal(err)
	}
	if err := slow.ReadPaths(leaves); err != nil {
		t.Fatal(err)
	}
	if err := fast.WriteBackPaths(leaves); err != nil {
		t.Fatal(err)
	}
	if err := slow.WriteBackPaths(leaves); err != nil {
		t.Fatal(err)
	}

	if fast.Stats() != slow.Stats() {
		t.Errorf("access stats diverge: fast %+v, slow %+v", fast.Stats(), slow.Stats())
	}
	if fast.Stash().Len() != slow.Stash().Len() || fast.Stash().Peak() != slow.Stash().Peak() {
		t.Errorf("stash divergence: fast %d/%d, slow %d/%d",
			fast.Stash().Len(), fast.Stash().Peak(), slow.Stash().Len(), slow.Stash().Peak())
	}
	if fastCS.Counters() != slowCS.Counters() {
		t.Errorf("traffic counters diverge: fast %+v, slow %+v", fastCS.Counters(), slowCS.Counters())
	}
	// Final tree contents must agree block for block.
	for id := uint64(0); id < blocks; id++ {
		a, errA := fast.Read(BlockID(id))
		b, errB := slow.Read(BlockID(id))
		if (errA == nil) != (errB == nil) || !bytes.Equal(a, b) {
			t.Fatalf("block %d: final state divergence", id)
		}
	}
}
