package oram

// Tiered-storage extensions: a Store whose buckets live below a bounded
// memory tier (internal/diskstore) exposes its cache behaviour through the
// optional interfaces here, and accepts look-ahead prefetch hints from the
// shard planner. The interfaces live in this package so CountingStore can
// forward them and the shard engine can probe them without importing the
// disk backend.

// PathPrefetcher is an optional Store extension: a hint that the paths to
// the given leaves will be read soon. A tiered store faults the hinted
// buckets into its memory tier asynchronously; an in-memory store has no
// use for it. Prefetching is strictly best-effort and MUST NOT change the
// store's observable behaviour: the client-visible access sequence (which
// buckets are read/written, in what order, with what contents) is
// identical with and without hints — only the store's own disk I/O is
// reordered (DESIGN.md invariant #14).
//
// Unlike the core Store methods, PrefetchPaths is safe to call from a
// goroutine other than the client's (the planner runs ahead of the
// session): tiered stores synchronise internally.
type PathPrefetcher interface {
	PrefetchPaths(leaves []Leaf)
}

// TierStats counts memory-tier behaviour of a tiered store, in the spirit
// of CountingStore's traffic ledger: Hits/Misses split demand bucket
// fetches by whether the bucket was already resident, PrefetchIssued
// counts buckets the look-ahead prefetcher faulted in from disk, and
// PrefetchUseful counts demand hits that landed on a still-unread
// prefetched bucket (the prefetches that actually hid a miss).
// DemandStallNs accumulates wall time the client spent blocked on demand
// disk reads — the effective miss cost prefetching is meant to hide.
type TierStats struct {
	Hits           uint64
	Misses         uint64
	PrefetchIssued uint64
	PrefetchUseful uint64
	DemandStallNs  int64
}

// Add returns the element-wise sum t + o (for cross-shard aggregation).
func (t TierStats) Add(o TierStats) TierStats {
	return TierStats{
		Hits:           t.Hits + o.Hits,
		Misses:         t.Misses + o.Misses,
		PrefetchIssued: t.PrefetchIssued + o.PrefetchIssued,
		PrefetchUseful: t.PrefetchUseful + o.PrefetchUseful,
		DemandStallNs:  t.DemandStallNs + o.DemandStallNs,
	}
}

// TieredStore is an optional Store extension implemented by stores with a
// disk tier under a bounded memory tier; purely in-memory stores do not
// implement it.
type TieredStore interface {
	// TierStats returns a snapshot of the tier counters.
	TierStats() TierStats
	// ResetTierStats zeroes the tier counters.
	ResetTierStats()
}

// TierStats forwards to the wrapped store's tier counters, returning the
// zero value when the store has no disk tier (so callers can aggregate
// unconditionally).
func (cs *CountingStore) TierStats() TierStats {
	if ts, ok := cs.inner.(TieredStore); ok {
		return ts.TierStats()
	}
	return TierStats{}
}

// ResetTierStats forwards to the wrapped store; a no-op without a disk
// tier.
func (cs *CountingStore) ResetTierStats() {
	if ts, ok := cs.inner.(TieredStore); ok {
		ts.ResetTierStats()
	}
}
