package oram

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestCheckpointRestoreRoundTrip: full client+store checkpoint mid-run;
// the restored instance serves identical data.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	const blocks = 256
	g := MustGeometry(GeometryConfig{LeafBits: 8, LeafZ: 4, BlockSize: 8})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Store: ps, Rand: rand.New(rand.NewSource(1)),
		Evict: PaperEvict, StashHits: true, Blocks: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[BlockID][]byte)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		id := BlockID(rng.Intn(blocks))
		v := make([]byte, 8)
		rng.Read(v)
		if err := c.Write(id, v); err != nil {
			t.Fatal(err)
		}
		ref[id] = v
	}

	var clientSnap, storeSnap bytes.Buffer
	if err := c.SaveState(&clientSnap); err != nil {
		t.Fatal(err)
	}
	if err := ps.Save(&storeSnap); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store + client, restore both.
	ps2, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps2.Load(bytes.NewReader(storeSnap.Bytes())); err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(ClientConfig{
		Store: ps2, Rand: rand.New(rand.NewSource(99)), // fresh RNG: fine
		Evict: PaperEvict, StashHits: true, Blocks: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadState(bytes.NewReader(clientSnap.Bytes())); err != nil {
		t.Fatal(err)
	}
	for id, want := range ref {
		got, err := c2.Read(id)
		if err != nil {
			t.Fatalf("restored read %d: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restored block %d = %x, want %x", id, got, want)
		}
	}
	// The restored client keeps working for new writes too.
	if err := c2.Write(3, bytes.Repeat([]byte{0xAA}, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestMetaStoreSnapshot(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 5, LeafZ: 4, BlockSize: 0})
	st := NewMetaStore(g)
	if err := st.WriteSlot(3, 2, 1, Slot{ID: 7, Leaf: 9}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewMetaStore(g)
	if err := st2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := st2.ReadSlot(3, 2, 1, &s); err != nil {
		t.Fatal(err)
	}
	if s.ID != 7 || s.Leaf != 9 {
		t.Errorf("restored slot %+v", s)
	}
	// Geometry mismatch rejected.
	gBig := MustGeometry(GeometryConfig{LeafBits: 6, LeafZ: 4, BlockSize: 0})
	if err := NewMetaStore(gBig).Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched geometry accepted")
	}
}

func TestSnapshotErrors(t *testing.T) {
	const blocks = 16
	c, _ := newTestClient(t, 4, blocks, 8, EvictConfig{})
	if err := c.LoadState(strings.NewReader("garbage-not-a-snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if err := c.LoadState(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Wrong block count.
	var snap bytes.Buffer
	if err := c.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	other, _ := newTestClient(t, 4, blocks*2, 8, EvictConfig{})
	if err := other.LoadState(bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("mismatched block count accepted")
	}
	// Recursive maps refuse flat snapshots.
	rm := newRecursive(t, 1<<12, 16, 64, 11)
	g := MustGeometry(GeometryConfig{LeafBits: 12, LeafZ: 4, BlockSize: 0})
	rc, err := NewClient(ClientConfig{
		Store: NewMetaStore(g), Rand: rand.New(rand.NewSource(12)),
		StashHits: true, Blocks: 1 << 12, PosMap: rm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SaveState(&bytes.Buffer{}); err == nil {
		t.Error("recursive map SaveState should refuse")
	}
	if err := rc.LoadState(bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("recursive map LoadState should refuse")
	}
}

// TestSnapshotDeterministic: two snapshots of identical state are
// byte-identical (stash serialised in sorted order).
func TestSnapshotDeterministic(t *testing.T) {
	const blocks = 64
	c, _ := newTestClient(t, 6, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := c.SaveState(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveState(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots differ between calls")
	}
}

// TestSealedStoreSnapshot: a sealed PayloadStore round-trips ciphertext
// exactly, and the restored store opens with the same key.
func TestSealedStoreSnapshot(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 2, BlockSize: 16})
	sealer := &xorSealer{key: 0x3C}
	st, err := NewPayloadStore(g, sealer)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte{5}, 16)
	if err := st.WriteSlot(2, 1, 0, Slot{ID: 4, Leaf: 7, Payload: pay}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := NewPayloadStore(g, sealer)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := st2.ReadSlot(2, 1, 0, &s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Payload, pay) {
		t.Errorf("sealed snapshot round trip = %x", s.Payload)
	}
	// Stride mismatch (different sealing) rejected.
	plain, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("stride mismatch accepted")
	}
}
