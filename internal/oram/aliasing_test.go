package oram

import (
	"bytes"
	"math/rand"
	"testing"
)

// aliasing_test.go pins the payload-ownership contract at the Access level
// (ISSUE 3 satellite): Access(OpRead) hands back "a copy owned by the
// caller" while Stash.Payload returns the live slab slice — so a caller
// scribbling over a read result must never change what a later read (or
// the server tree) sees.

func TestAccessReadResultIsCallerOwned(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 6, LeafZ: 4, BlockSize: 32})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Store:     NewCountingStore(ps, nil),
		Rand:      rand.New(rand.NewSource(21)),
		Evict:     PaperEvict,
		StashHits: true,
		Blocks:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 64)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, 32)
	}
	if err := c.Load(64, nil, func(id BlockID) []byte { return want[id] }); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		for id := BlockID(0); id < 64; id++ {
			out, err := c.Access(OpRead, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, want[id]) {
				t.Fatalf("round %d: block %d = %x, want %x", round, id, out, want[id])
			}
			// Scribble over the returned buffer. If Access leaked the live
			// stash slab (or a buffer the store recycles), a later read of
			// this or any other block would observe the damage.
			for j := range out {
				out[j] = 0xFF
			}
		}
	}

	// The stash-hit fast path must make the same guarantee: force a block
	// into the stash, then read it twice through the stash-hit branch.
	if err := c.Write(5, want[5]); err != nil {
		t.Fatal(err)
	}
	first, err := c.Access(OpRead, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range first {
		first[j] = 0xEE
	}
	second, err := c.Access(OpRead, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, want[5]) {
		t.Fatalf("stash-hit read after caller scribble = %x, want %x", second, want[5])
	}
}

// TestWriteBufferIsCopiedIn: mutating a buffer after Access(OpWrite) must
// not change the stored block (the stash copies on write).
func TestWriteBufferIsCopiedIn(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 5, LeafZ: 4, BlockSize: 16})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Store:     NewCountingStore(ps, nil),
		Rand:      rand.New(rand.NewSource(22)),
		Evict:     PaperEvict,
		StashHits: true,
		Blocks:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{7}, 16)
	if err := c.Write(3, buf); err != nil {
		t.Fatal(err)
	}
	for j := range buf {
		buf[j] = 0
	}
	got, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 16)) {
		t.Fatalf("stored block follows the caller's buffer: %x", got)
	}
}
