package oram

import (
	"math/rand"
	"testing"

	"repro/internal/crypto"
)

// alloc_test.go gates the allocation-free hot path (the PR's tentpole):
// after warm-up, a PathORAM access over the local MetaStore path must not
// allocate at all — the stash slab, the reusable evict planner and the
// recycled read/write buffers absorb every step of the cycle.

func allocTestClient(t *testing.T) *Client {
	t.Helper()
	g := MustGeometry(GeometryConfig{LeafBits: 10, LeafZ: 4, BlockSize: 0})
	c, err := NewClient(ClientConfig{
		Store:     NewCountingStore(NewMetaStore(g), nil),
		Rand:      rand.New(rand.NewSource(11)),
		Evict:     PaperEvict,
		StashHits: true,
		Blocks:    1 << 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(1<<11, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Warm up stash slab, planner scratch and map capacities.
	for i := 0; i < 2048; i++ {
		if _, err := c.Access(OpRead, BlockID(uint64(i)%(1<<11)), nil); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestAccessAllocs: a steady-state access (path read, remap, greedy
// write-back, background eviction) on the MetaStore path has an allocation
// budget of zero.
func TestAccessAllocs(t *testing.T) {
	c := allocTestClient(t)
	rng := rand.New(rand.NewSource(12))
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := c.Access(OpRead, BlockID(uint64(rng.Int63n(1<<11))), nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Access allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

// TestWriteBackAllocs: the eviction half in isolation (plan + write) with
// the stash refilled by a path read each round — budget zero.
func TestWriteBackAllocs(t *testing.T) {
	c := allocTestClient(t)
	rng := rand.New(rand.NewSource(13))
	leaves := int64(c.Geometry().Leaves())
	allocs := testing.AllocsPerRun(500, func() {
		leaf := Leaf(rng.Int63n(leaves))
		if err := c.ReadPath(leaf); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteBackPath(leaf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("ReadPath+WriteBackPath allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

// TestWriteBackPathsAllocs: the multi-path joint write-back (the LAORAM
// bin primitive) also runs allocation-free once its scratch has warmed up.
func TestWriteBackPathsAllocs(t *testing.T) {
	c := allocTestClient(t)
	rng := rand.New(rand.NewSource(14))
	leaves := int64(c.Geometry().Leaves())
	pair := make([]Leaf, 2)
	round := func() {
		pair[0] = Leaf(rng.Int63n(leaves))
		pair[1] = Leaf(rng.Int63n(leaves))
		if pair[0] == pair[1] {
			pair[1] = (pair[1] + 1) % Leaf(leaves)
		}
		if err := c.ReadPaths(pair); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteBackPaths(pair); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		round() // warm the multi-path scratch
	}
	allocs := testing.AllocsPerRun(300, round)
	if allocs > 0 {
		t.Errorf("ReadPaths+WriteBackPaths allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

func sealedAllocClient(t *testing.T) (*Client, uint64) {
	t.Helper()
	g := MustGeometry(GeometryConfig{LeafBits: 8, LeafZ: 4, BlockSize: 64})
	key := make([]byte, 32)
	sealer, err := crypto.NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPayloadStore(g, sealer)
	if err != nil {
		t.Fatal(err)
	}
	blocks := uint64(1) << 9
	c, err := NewClient(ClientConfig{
		Store:     NewCountingStore(ps, nil),
		Rand:      rand.New(rand.NewSource(15)),
		Evict:     PaperEvict,
		StashHits: true,
		Blocks:    blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]byte, 64)
	if err := c.Load(blocks, nil, func(id BlockID) []byte {
		for i := range row {
			row[i] = byte(uint64(id) + uint64(i))
		}
		return row
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if _, err := c.Access(OpRead, BlockID(uint64(i)%blocks), nil); err != nil {
			t.Fatal(err)
		}
	}
	return c, blocks
}

// TestAccessSealedAllocBudget: with a payload-bearing sealed store the only
// remaining steady-state allocation of Access is the caller-owned copy an
// OpRead returns — budget exactly one object per read.
func TestAccessSealedAllocBudget(t *testing.T) {
	c, blocks := sealedAllocClient(t)
	rng := rand.New(rand.NewSource(16))
	allocs := testing.AllocsPerRun(300, func() {
		out, err := c.Access(OpRead, BlockID(uint64(rng.Int63n(int64(blocks)))), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 64 {
			t.Fatalf("read returned %d bytes", len(out))
		}
	})
	if allocs > 1 {
		t.Errorf("sealed Access allocates %.2f objects/op in steady state, want <= 1 (the returned copy)", allocs)
	}
}

// TestAccessSealedAllocs: ReadInto with a recycled buffer closes the last
// gap — the whole sealed access cycle (path read, decrypt into re-armed
// client buffers, stash copy, reseal, write-back, background eviction,
// result copy) has an allocation budget of zero.
func TestAccessSealedAllocs(t *testing.T) {
	c, blocks := sealedAllocClient(t)
	rng := rand.New(rand.NewSource(16))
	buf := make([]byte, 64)
	allocs := testing.AllocsPerRun(500, func() {
		out, err := c.ReadInto(BlockID(uint64(rng.Int63n(int64(blocks)))), buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 64 {
			t.Fatalf("read returned %d bytes", len(out))
		}
	})
	if allocs > 0 {
		t.Errorf("sealed ReadInto allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

// TestReadIntoMatchesAccess: ReadInto returns the same bytes Access does
// and accepts undersized or nil buffers by growing.
func TestReadIntoMatchesAccess(t *testing.T) {
	c, blocks := sealedAllocClient(t)
	for i := uint64(0); i < 32; i++ {
		id := BlockID(i % blocks)
		want, err := c.Access(OpRead, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, buf := range [][]byte{nil, make([]byte, 3), make([]byte, 64)} {
			got, err := c.ReadInto(id, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !bytesEqual(got, want) {
				t.Fatalf("block %d: ReadInto diverged from Access", id)
			}
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
