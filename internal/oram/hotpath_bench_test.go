package oram

import (
	"math/rand"
	"testing"

	"repro/internal/crypto"
)

// benchSealer builds a deterministic-key sealer for the sealed benchmarks.
func benchSealer(b *testing.B) Sealer {
	b.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 3)
	}
	s, err := crypto.NewSealer(key)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// hotpath_bench_test.go measures the per-access engine cost the paper's
// argument rests on (look-ahead only pays off if the client CPU path is not
// the bottleneck): one full PathORAM access cycle, one write-back, and the
// raw eviction planning, all in steady state. Run with -benchmem; the
// companion alloc gates live in alloc_test.go.

// benchClient builds a loaded steady-state client over a MetaStore.
func benchClient(b *testing.B, leafBits int) *Client {
	b.Helper()
	g := MustGeometry(GeometryConfig{LeafBits: leafBits, LeafZ: 4, BlockSize: 0})
	cs := NewCountingStore(NewMetaStore(g), nil)
	blocks := uint64(1) << uint(leafBits+1)
	c, err := NewClient(ClientConfig{
		Store:     cs,
		Rand:      rand.New(rand.NewSource(1)),
		Evict:     PaperEvict,
		StashHits: true,
		Blocks:    blocks,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Load(blocks, nil, nil); err != nil {
		b.Fatal(err)
	}
	// Warm up: let stash, scratch and buffers reach steady state.
	for i := 0; i < 512; i++ {
		if _, err := c.Access(OpRead, BlockID(uint64(i)%blocks), nil); err != nil {
			b.Fatal(err)
		}
	}
	c.ResetStats()
	return c
}

// BenchmarkAccessSteadyState is one full PathORAM access (stash lookup,
// path read, remap, greedy write-back, background eviction) on a
// metadata-only store: the pure client-CPU cost with server I/O reduced to
// array copies.
func BenchmarkAccessSteadyState(b *testing.B) {
	c := benchClient(b, 12)
	blocks := c.PosMap().Len()
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(OpRead, BlockID(uint64(rng.Int63n(int64(blocks)))), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBackPath isolates the eviction half of the cycle: plan the
// greedy write-back for one path and execute it (the read refills the stash
// so the planner always has work).
func BenchmarkWriteBackPath(b *testing.B) {
	c := benchClient(b, 12)
	rng := rand.New(rand.NewSource(3))
	leaves := c.Geometry().Leaves()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := Leaf(rng.Int63n(int64(leaves)))
		if err := c.ReadPath(leaf); err != nil {
			b.Fatal(err)
		}
		if err := c.WriteBackPath(leaf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessSealed is the same access cycle over a payload-bearing
// store with AES-CTR+HMAC sealing at the storage boundary — the §III threat
// model's full data path (decrypt on read, encrypt on write-back).
func BenchmarkAccessSealed(b *testing.B) {
	g := MustGeometry(GeometryConfig{LeafBits: 10, LeafZ: 4, BlockSize: 128})
	sealer := benchSealer(b)
	ps, err := NewPayloadStore(g, sealer)
	if err != nil {
		b.Fatal(err)
	}
	blocks := uint64(1) << 11
	c, err := NewClient(ClientConfig{
		Store:     NewCountingStore(ps, nil),
		Rand:      rand.New(rand.NewSource(4)),
		Evict:     PaperEvict,
		StashHits: true,
		Blocks:    blocks,
	})
	if err != nil {
		b.Fatal(err)
	}
	row := make([]byte, 128)
	if err := c.Load(blocks, nil, func(id BlockID) []byte { return row }); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := c.Access(OpRead, BlockID(uint64(i)%blocks), nil); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(OpRead, BlockID(uint64(rng.Int63n(int64(blocks)))), nil); err != nil {
			b.Fatal(err)
		}
	}
}
