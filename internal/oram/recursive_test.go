package oram

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func newRecursive(t *testing.T, blocks uint64, epb int, cutoff uint64, seed int64) *RecursiveMap {
	t.Helper()
	rm, err := NewRecursiveMap(RecursiveConfig{
		Blocks: blocks, EntriesPerBlock: epb, Cutoff: cutoff,
		Rand: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestRecursiveConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRecursiveMap(RecursiveConfig{Blocks: 0, Rand: rng}); err == nil {
		t.Error("Blocks=0 accepted")
	}
	if _, err := NewRecursiveMap(RecursiveConfig{Blocks: 8}); err == nil {
		t.Error("nil Rand accepted")
	}
	if _, err := NewRecursiveMap(RecursiveConfig{Blocks: 8, Rand: rng, EntriesPerBlock: 1}); err == nil {
		t.Error("EntriesPerBlock=1 accepted")
	}
}

func TestRecursiveDegenerate(t *testing.T) {
	// Below the cutoff: no ORAM levels, behaves exactly like a flat map.
	rm := newRecursive(t, 100, 16, 1024, 2)
	if rm.Levels() != 0 {
		t.Errorf("Levels = %d, want 0", rm.Levels())
	}
	rm.Set(5, 77)
	if rm.Get(5) != 77 || !rm.Known(5) {
		t.Error("degenerate map broken")
	}
	if rm.Known(6) {
		t.Error("unset entry known")
	}
}

func TestRecursiveLevelsAndRoundTrip(t *testing.T) {
	// 4096 entries, 16/block, cutoff 64: 4096→256→16 ⇒ 2 ORAM levels.
	rm := newRecursive(t, 4096, 16, 64, 3)
	if rm.Levels() != 2 {
		t.Fatalf("Levels = %d, want 2", rm.Levels())
	}
	if rm.Len() != 4096 {
		t.Errorf("Len = %d", rm.Len())
	}
	// Everything starts unknown.
	for _, id := range []BlockID{0, 1, 63, 64, 4095} {
		if rm.Known(id) {
			t.Errorf("entry %d known at init", id)
		}
		if rm.Get(id) != NoLeaf {
			t.Errorf("entry %d = %d, want NoLeaf", id, rm.Get(id))
		}
	}
	// Random round-trips, including overwrites and clears.
	rng := rand.New(rand.NewSource(4))
	ref := make(map[BlockID]Leaf)
	for i := 0; i < 300; i++ {
		id := BlockID(rng.Intn(4096))
		switch rng.Intn(3) {
		case 0, 1:
			l := Leaf(rng.Intn(1 << 20))
			rm.Set(id, l)
			ref[id] = l
		case 2:
			rm.Set(id, NoLeaf)
			delete(ref, id)
		}
		// Spot-check a few entries.
		for j := 0; j < 3; j++ {
			q := BlockID(rng.Intn(4096))
			want, ok := ref[q]
			if !ok {
				want = NoLeaf
			}
			if got := rm.Get(q); got != want {
				t.Fatalf("op %d: entry %d = %d, want %d", i, q, got, want)
			}
		}
	}
}

func TestRecursiveClientStateSmall(t *testing.T) {
	rm := newRecursive(t, 1<<14, 32, 256, 5)
	flatBytes := int64(1<<14) * 4
	if rm.Bytes() >= flatBytes {
		t.Errorf("recursive client state %d B not smaller than flat %d B", rm.Bytes(), flatBytes)
	}
	if rm.ServerBytes() <= 0 {
		t.Error("server bytes missing")
	}
}

// TestClientWithRecursiveMap runs a full PathORAM data client whose
// position map is itself recursive — the complete O(log N)-client
// construction — and checks read-your-writes.
func TestClientWithRecursiveMap(t *testing.T) {
	const blocks = 512
	rm := newRecursive(t, blocks, 16, 32, 6)
	if rm.Levels() == 0 {
		t.Fatal("expected at least one recursion level")
	}
	g := MustGeometry(GeometryConfig{LeafBits: LeafBitsFor(blocks), LeafZ: 4, BlockSize: 8})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Store: ps, Rand: rand.New(rand.NewSource(7)),
		Evict: PaperEvict, StashHits: true, Blocks: blocks, PosMap: rm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(blocks, nil, func(id BlockID) []byte {
		b := make([]byte, 8)
		b[0] = byte(id)
		return b
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	ref := make(map[BlockID]byte)
	for i := 0; i < 200; i++ {
		id := BlockID(rng.Intn(blocks))
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			b := make([]byte, 8)
			b[0] = v
			if err := c.Write(id, b); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			ref[id] = v
		} else {
			got, err := c.Read(id)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			want, ok := ref[id]
			if !ok {
				want = byte(id)
			}
			if got[0] != want {
				t.Fatalf("op %d: block %d = %d, want %d", i, id, got[0], want)
			}
		}
	}
}

// TestRecursiveMapObliviousness: the map ORAM's own leaf accesses are
// uniform, so recursion leaks nothing extra.
func TestRecursiveMapObliviousness(t *testing.T) {
	rm := newRecursive(t, 1<<12, 16, 64, 9)
	if rm.Levels() == 0 {
		t.Skip("no recursion at this size")
	}
	level0 := rm.clients[0]
	h := stats.NewHistogram(int(level0.Geometry().Leaves()))
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 6000; i++ {
		id := BlockID(rng.Intn(1 << 12))
		// Observe the leaf the level-0 access is about to fetch.
		blk := BlockID(uint64(id) / uint64(rm.epb))
		if !level0.Stash().Contains(blk) {
			if l := level0.PosMap().Get(blk); l != NoLeaf {
				h.Add(uint64(l))
			}
		}
		rm.Set(id, Leaf(rng.Intn(1<<12)))
	}
	if _, _, p, err := stats.ChiSquareUniform(h); err != nil || p < 0.001 {
		t.Errorf("recursive map accesses not uniform: p=%v err=%v", p, err)
	}
}

func TestUpdatePrimitive(t *testing.T) {
	const blocks = 64
	c, _ := newTestClient(t, 6, blocks, 8, PaperEvict)
	if err := c.Load(blocks, nil, func(id BlockID) []byte { return make([]byte, 8) }); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(3, func(p []byte) { p[0] = 0x42 }); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42 {
		t.Errorf("Update lost: %x", got[0])
	}
	if err := c.Update(9999, nil); err == nil {
		t.Error("out-of-range Update accepted")
	}
	// Update on a stash-resident block takes the stash-hit path.
	if err := c.Stash().Put(5, c.PosMap().Get(5), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(5, func(p []byte) { p[1] = 0x24 }); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Stash().Payload(5)
	if p == nil || p[1] != 0x24 {
		t.Error("stash-hit Update lost")
	}
}
