package oram

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func newTestClient(t *testing.T, leafBits int, blocks uint64, blockSize int, evict EvictConfig) (*Client, *CountingStore) {
	t.Helper()
	g := MustGeometry(GeometryConfig{LeafBits: leafBits, LeafZ: 4, BlockSize: blockSize})
	var inner Store
	if blockSize > 0 {
		ps, err := NewPayloadStore(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		inner = ps
	} else {
		inner = NewMetaStore(g)
	}
	cs := NewCountingStore(inner, nil)
	c, err := NewClient(ClientConfig{
		Store:     cs,
		Rand:      rand.New(rand.NewSource(42)),
		Evict:     evict,
		StashHits: true,
		Blocks:    blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cs
}

func payload8(blockSize int, v uint64) []byte {
	b := make([]byte, blockSize)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestClientConfigValidation(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 4, BlockSize: 0})
	st := NewMetaStore(g)
	rng := rand.New(rand.NewSource(1))
	cases := []ClientConfig{
		{Store: nil, Rand: rng, Blocks: 4},
		{Store: st, Rand: nil, Blocks: 4},
		{Store: st, Rand: rng, Blocks: 0},
		{Store: st, Rand: rng, Blocks: 4, Evict: EvictConfig{Enabled: true, High: 0, Low: 0}},
		{Store: st, Rand: rng, Blocks: 4, Evict: EvictConfig{Enabled: true, High: 5, Low: 9}},
	}
	for i, cfg := range cases {
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("case %d: config accepted: %+v", i, cfg)
		}
	}
}

func TestReadUnwrittenFails(t *testing.T) {
	c, _ := newTestClient(t, 6, 64, 16, EvictConfig{})
	if _, err := c.Read(3); err == nil {
		t.Error("read of unwritten block succeeded")
	}
	if _, err := c.Read(9999); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestWriteThenRead(t *testing.T) {
	c, _ := newTestClient(t, 6, 64, 16, EvictConfig{})
	want := payload8(16, 0xDEADBEEF)
	if err := c.Write(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read back %x, want %x", got, want)
	}
	// Returned slice is a copy.
	got[0] = 0xFF
	got2, err := c.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Error("payload aliased to caller")
	}
}

// TestReferenceModel drives the ORAM with a random op sequence and checks
// every read against a plain map — the read-your-writes correctness
// invariant (#2 in DESIGN.md).
func TestReferenceModel(t *testing.T) {
	const blocks = 128
	c, _ := newTestClient(t, 7, blocks, 8, PaperEvict)
	rng := rand.New(rand.NewSource(99))
	ref := make(map[BlockID][]byte)
	for i := 0; i < 4000; i++ {
		id := BlockID(rng.Intn(blocks))
		if rng.Intn(2) == 0 || ref[id] == nil {
			v := payload8(8, rng.Uint64())
			if err := c.Write(id, v); err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
			ref[id] = v
		} else {
			got, err := c.Read(id)
			if err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
			if !bytes.Equal(got, ref[id]) {
				t.Fatalf("op %d: block %d = %x, want %x", i, id, got, ref[id])
			}
		}
	}
}

// scanTree returns a map block → occurrence count across all tree slots.
func scanTree(t *testing.T, st Store) map[BlockID]int {
	t.Helper()
	g := st.Geometry()
	out := make(map[BlockID]int)
	for lvl := 0; lvl < g.Levels(); lvl++ {
		buf := make([]Slot, g.BucketSize(lvl))
		for node := uint64(0); node < 1<<uint(lvl); node++ {
			if err := st.ReadBucket(lvl, node, buf); err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if !buf[i].Dummy() {
					out[buf[i].ID]++
				}
			}
		}
	}
	return out
}

// TestBlockConservation checks invariant #1: after any number of accesses,
// every written block exists exactly once across tree ∪ stash, and its tree
// copy (if any) lies on the path of its position-map leaf.
func TestBlockConservation(t *testing.T) {
	const blocks = 96
	c, cs := newTestClient(t, 7, blocks, 0, PaperEvict)
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		id := BlockID(rng.Intn(blocks))
		if _, err := c.Access(OpRead, id, nil); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	inTree := scanTree(t, cs)
	for id := BlockID(0); id < blocks; id++ {
		n := inTree[id]
		if c.Stash().Contains(id) {
			n++
		}
		if n != 1 {
			t.Errorf("block %d present %d times (tree=%d stash=%v)", id, n, inTree[id], c.Stash().Contains(id))
		}
	}
	// Leaf-consistency: tree copies must lie on their posmap path.
	g := c.Geometry()
	for lvl := 0; lvl < g.Levels(); lvl++ {
		buf := make([]Slot, g.BucketSize(lvl))
		for node := uint64(0); node < 1<<uint(lvl); node++ {
			if err := cs.ReadBucket(lvl, node, buf); err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if buf[i].Dummy() {
					continue
				}
				want := c.PosMap().Get(buf[i].ID)
				if buf[i].Leaf != want {
					t.Errorf("block %d: slot leaf %d != posmap leaf %d", buf[i].ID, buf[i].Leaf, want)
				}
				if g.NodeAt(want, lvl) != node {
					t.Errorf("block %d stored off-path (level %d node %d, leaf %d)", buf[i].ID, lvl, node, want)
				}
			}
		}
	}
}

func TestLoadPlacesEverything(t *testing.T) {
	const blocks = 1 << 10
	c, cs := newTestClient(t, 10, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	inTree := scanTree(t, cs)
	missing := 0
	for id := BlockID(0); id < blocks; id++ {
		if inTree[id] == 0 && !c.Stash().Contains(id) {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d blocks lost during load", missing)
	}
	// With leaves == blocks and Z=4 the load stash should be tiny.
	if c.Stash().Len() > blocks/64 {
		t.Errorf("load stash unexpectedly large: %d", c.Stash().Len())
	}
}

func TestLoadWithExplicitLeaves(t *testing.T) {
	const blocks = 32
	c, _ := newTestClient(t, 6, blocks, 0, EvictConfig{})
	leafOf := func(id BlockID) Leaf { return Leaf(uint64(id) % 64) }
	if err := c.Load(blocks, leafOf, nil); err != nil {
		t.Fatal(err)
	}
	for id := BlockID(0); id < blocks; id++ {
		if got := c.PosMap().Get(id); got != leafOf(id) {
			t.Errorf("posmap(%d) = %d, want %d", id, got, leafOf(id))
		}
	}
	// Invalid leaf from callback is rejected.
	c2, _ := newTestClient(t, 6, blocks, 0, EvictConfig{})
	if err := c2.Load(blocks, func(BlockID) Leaf { return Leaf(1 << 40) }, nil); err == nil {
		t.Error("invalid leafOf accepted")
	}
}

func TestStashHitServesWithoutTraffic(t *testing.T) {
	const blocks = 16
	// Tiny tree + no eviction so a block is likely to stay stashed.
	g := MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 4, BlockSize: 8})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCountingStore(ps, nil)
	c, err := NewClient(ClientConfig{Store: cs, Rand: rand.New(rand.NewSource(3)), StashHits: true, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1, payload8(8, 7)); err != nil {
		t.Fatal(err)
	}
	// Force the block into the stash directly to make the hit deterministic.
	if err := c.Stash().Put(1, c.PosMap().Get(1), payload8(8, 7)); err == nil {
		// If it was already there this is a replace; either way it is stashed now.
		_ = err
	}
	before := cs.Counters()
	if _, err := c.Read(1); err != nil {
		t.Fatal(err)
	}
	d := cs.Counters().Sub(before)
	if d.SlotReads != 0 || d.SlotWrites != 0 {
		t.Errorf("stash hit generated traffic: %+v", d)
	}
	if c.Stats().StashHits == 0 {
		t.Error("stash hit not counted")
	}
}

func TestBackgroundEvictionTriggers(t *testing.T) {
	const blocks = 512
	// Z=1 leaf buckets and a low threshold force stash pressure.
	g := MustGeometry(GeometryConfig{LeafBits: 9, LeafZ: 1, BlockSize: 0})
	cs := NewCountingStore(NewMetaStore(g), nil)
	c, err := NewClient(ClientConfig{
		Store:     cs,
		Rand:      rand.New(rand.NewSource(11)),
		Evict:     EvictConfig{Enabled: true, High: 30, Low: 10},
		StashHits: true,
		Blocks:    blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		if _, err := c.Access(OpRead, BlockID(rng.Intn(blocks)), nil); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if c.Stash().Len() > 30+c.Geometry().PathSlots() {
			t.Fatalf("stash exceeded bound: %d", c.Stash().Len())
		}
	}
	if c.Stats().DummyReads == 0 {
		t.Error("expected background evictions under Z=1 pressure")
	}
	if c.Stats().DummyReadsPerAccess() <= 0 {
		t.Error("DummyReadsPerAccess should be positive")
	}
}

// TestRemapUniformity checks §VI empirically for the PathORAM baseline: the
// leaves assigned by remapping are uniform (chi-square, α=0.001).
func TestRemapUniformity(t *testing.T) {
	const blocks = 64
	c, _ := newTestClient(t, 6, blocks, 0, PaperEvict)
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram(int(c.Geometry().Leaves()))
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 8000; i++ {
		id := BlockID(rng.Intn(blocks))
		if _, err := c.Access(OpRead, id, nil); err != nil {
			t.Fatal(err)
		}
		if l := c.PosMap().Get(id); l != NoLeaf {
			h.Add(uint64(l))
		}
	}
	stat, df, p, err := stats.ChiSquareUniform(h)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Errorf("remap distribution non-uniform: chi2=%.1f df=%d p=%g", stat, df, p)
	}
}

// TestAccessedLeafUniformity checks the adversary's view: the sequence of
// leaves fetched from the server is uniform.
func TestAccessedLeafUniformity(t *testing.T) {
	const blocks = 64
	c, _ := newTestClient(t, 6, blocks, 0, PaperEvict)
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram(int(c.Geometry().Leaves()))
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 8000; i++ {
		id := BlockID(rng.Intn(blocks))
		// The leaf about to be fetched is the current posmap entry.
		if !c.Stash().Contains(id) {
			h.Add(uint64(c.PosMap().Get(id)))
		}
		if _, err := c.Access(OpRead, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	_, _, p, err := stats.ChiSquareUniform(h)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Errorf("accessed-leaf distribution non-uniform: p=%g", p)
	}
}

func TestStatsAccounting(t *testing.T) {
	const blocks = 32
	c, _ := newTestClient(t, 5, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	for i := BlockID(0); i < 10; i++ {
		if _, err := c.Access(OpRead, i, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Accesses != 10 {
		t.Errorf("Accesses = %d", s.Accesses)
	}
	if s.PathReads+s.StashHits != 10 {
		t.Errorf("PathReads %d + StashHits %d != 10", s.PathReads, s.StashHits)
	}
	if s.PathWrites != s.PathReads {
		t.Errorf("PathWrites %d != PathReads %d", s.PathWrites, s.PathReads)
	}
	prev := s
	if _, err := c.Access(OpRead, 0, nil); err != nil {
		t.Fatal(err)
	}
	d := c.Stats().Sub(prev)
	if d.Accesses != 1 {
		t.Errorf("windowed Accesses = %d", d.Accesses)
	}
}

func TestFatTreeClientWorks(t *testing.T) {
	const blocks = 256
	g := MustGeometry(GeometryConfig{LeafBits: 8, LeafZ: 4, RootZ: 8, Profile: ProfileLinear, BlockSize: 8})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Store: NewCountingStore(ps, nil), Rand: rand.New(rand.NewSource(2)),
		Evict: PaperEvict, StashHits: true, Blocks: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < blocks; i++ {
		if err := c.Write(BlockID(i), payload8(8, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < blocks; i++ {
		got, err := c.Read(BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("block %d corrupt", i)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("Op strings wrong")
	}
	if Op(9).String() != fmt.Sprintf("Op(%d)", 9) {
		t.Error("unknown Op string wrong")
	}
}

func TestDummySlotAndClear(t *testing.T) {
	s := Slot{ID: 4, Leaf: 2, Payload: []byte{1}}
	s.Clear()
	if !s.Dummy() || s.Payload != nil {
		t.Errorf("Clear left %+v", s)
	}
	d := DummySlot()
	if !d.Dummy() {
		t.Error("DummySlot not dummy")
	}
}
