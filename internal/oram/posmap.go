package oram

import "fmt"

// PositionMap abstracts the block ID → leaf mapping (§II-C). Two
// implementations exist: the flat in-client PosMap (the paper's setting —
// it lives in the trainer GPU's HBM, invisible to the adversary) and
// RecursiveMap, which stores the map itself in smaller ORAMs as the
// original PathORAM paper describes, shrinking trusted client state to
// O(log N) at the cost of extra oblivious accesses per lookup.
type PositionMap interface {
	// Get returns the leaf currently assigned to id, or NoLeaf.
	Get(id BlockID) Leaf
	// Set assigns leaf to id (NoLeaf clears).
	Set(id BlockID, l Leaf)
	// Known reports whether id has an assigned leaf.
	Known(id BlockID) bool
	// Len returns the number of block IDs covered.
	Len() uint64
	// Bytes returns the trusted client memory the map occupies.
	Bytes() int64
}

// PosMap is the flat position map. IDs are dense (0..N-1) so a slice
// suffices; leaves fit uint32 for every configuration in the paper
// (≤ 2^24 leaves).
type PosMap struct {
	leaves []uint32
}

var _ PositionMap = (*PosMap)(nil)

const noLeaf32 = ^uint32(0)

// NewPosMap creates a position map for n blocks, all initially unplaced.
func NewPosMap(n uint64) *PosMap {
	pm := &PosMap{leaves: make([]uint32, n)}
	for i := range pm.leaves {
		pm.leaves[i] = noLeaf32
	}
	return pm
}

// Len returns the number of block IDs the map covers.
func (pm *PosMap) Len() uint64 { return uint64(len(pm.leaves)) }

// Get returns the leaf currently assigned to id, or NoLeaf if the block has
// never been placed.
func (pm *PosMap) Get(id BlockID) Leaf {
	v := pm.leaves[id]
	if v == noLeaf32 {
		return NoLeaf
	}
	return Leaf(v)
}

// Set assigns leaf to id.
func (pm *PosMap) Set(id BlockID, l Leaf) {
	if l == NoLeaf {
		pm.leaves[id] = noLeaf32
		return
	}
	if uint64(l) >= uint64(noLeaf32) {
		panic(fmt.Sprintf("oram: leaf %d overflows position map entry", l))
	}
	pm.leaves[id] = uint32(l)
}

// Known reports whether id has an assigned leaf.
func (pm *PosMap) Known(id BlockID) bool { return pm.leaves[id] != noLeaf32 }

// Bytes returns the client memory footprint of the map, for the paper's
// client-storage accounting.
func (pm *PosMap) Bytes() int64 { return int64(len(pm.leaves)) * 4 }
