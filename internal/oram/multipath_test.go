package oram

import (
	"math/rand"
	"testing"
)

// TestWriteBackPathsConservation is the regression test for the multi-path
// clobbering bug: reading several overlapping paths and writing them back
// jointly must preserve every block exactly once (tree ∪ stash).
func TestWriteBackPathsConservation(t *testing.T) {
	const blocks = 128
	c, cs := newTestClient(t, 7, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 60; round++ {
		k := 2 + rng.Intn(3) // 2..4 paths per round
		leaves := make([]Leaf, 0, k)
		seen := map[Leaf]bool{}
		for len(leaves) < k {
			l := Leaf(rng.Int63n(int64(c.Geometry().Leaves())))
			if !seen[l] {
				seen[l] = true
				leaves = append(leaves, l)
			}
		}
		for _, l := range leaves {
			if err := c.ReadPath(l); err != nil {
				t.Fatal(err)
			}
		}
		// Remap a few stashed blocks to fresh leaves (as a superblock
		// client would).
		for _, id := range c.Stash().IDs() {
			if rng.Intn(2) == 0 {
				nl := c.RandomLeaf()
				c.PosMap().Set(id, nl)
				c.Stash().SetLeaf(id, nl)
			}
		}
		if err := c.WriteBackPaths(leaves); err != nil {
			t.Fatal(err)
		}
		inTree := scanTree(t, cs)
		for id := BlockID(0); id < blocks; id++ {
			n := inTree[id]
			if c.Stash().Contains(id) {
				n++
			}
			if n != 1 {
				t.Fatalf("round %d: block %d present %d times", round, id, n)
			}
		}
	}
}

// TestWriteBackPathsPlacementLegality: every block written must land on the
// path of its assigned leaf.
func TestWriteBackPathsPlacementLegality(t *testing.T) {
	const blocks = 64
	c, cs := newTestClient(t, 6, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	leaves := []Leaf{0, 31, 32, 63}
	for _, l := range leaves {
		if err := c.ReadPath(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteBackPaths(leaves); err != nil {
		t.Fatal(err)
	}
	g := c.Geometry()
	for lvl := 0; lvl < g.Levels(); lvl++ {
		buf := make([]Slot, g.BucketSize(lvl))
		for node := uint64(0); node < 1<<uint(lvl); node++ {
			if err := cs.ReadBucket(lvl, node, buf); err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if buf[i].Dummy() {
					continue
				}
				if g.NodeAt(buf[i].Leaf, lvl) != node {
					t.Errorf("block %d (leaf %d) stored off-path at level %d node %d",
						buf[i].ID, buf[i].Leaf, lvl, node)
				}
			}
		}
	}
}

func TestWriteBackPathsEdgeCases(t *testing.T) {
	const blocks = 16
	c, _ := newTestClient(t, 4, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Empty set is a no-op.
	if err := c.WriteBackPaths(nil); err != nil {
		t.Fatal(err)
	}
	// Single path delegates to WriteBackPath.
	if err := c.ReadPath(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBackPaths([]Leaf{3}); err != nil {
		t.Fatal(err)
	}
	// Invalid leaf rejected.
	if err := c.WriteBackPaths([]Leaf{1, Leaf(1 << 40)}); err == nil {
		t.Error("invalid leaf accepted")
	}
	// Duplicate leaves collapse (shared buckets written once).
	if err := c.ReadPath(5); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBackPaths([]Leaf{5, 5}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBackPathsDrainsStash: with enough room, the joint write-back
// should place read blocks back rather than strand them in the stash.
func TestWriteBackPathsDrainsStash(t *testing.T) {
	const blocks = 64
	c, _ := newTestClient(t, 6, blocks, 0, EvictConfig{})
	if err := c.Load(blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	start := c.Stash().Len()
	leaves := []Leaf{7, 21}
	for _, l := range leaves {
		if err := c.ReadPath(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteBackPaths(leaves); err != nil {
		t.Fatal(err)
	}
	// Nothing was remapped, so every block read must fit back exactly
	// where it was.
	if c.Stash().Len() != start {
		t.Errorf("stash grew from %d to %d without remaps", start, c.Stash().Len())
	}
}
