package oram

import (
	"bytes"
	"testing"
)

func testGeom(t *testing.T, blockSize int) *Geometry {
	t.Helper()
	return MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 3, BlockSize: blockSize})
}

func TestMetaStoreRoundTrip(t *testing.T) {
	g := testGeom(t, 128)
	st := NewMetaStore(g)
	if st.Geometry() != g {
		t.Fatal("geometry not retained")
	}
	// All slots start dummy.
	buf := make([]Slot, g.BucketSize(0))
	if err := st.ReadBucket(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if !buf[i].Dummy() {
			t.Errorf("slot %d not dummy at init", i)
		}
	}
	// Write and read back a bucket.
	src := []Slot{{ID: 7, Leaf: 3}, {ID: 9, Leaf: 12}, DummySlot()}
	if err := st.WriteBucket(2, 1, src); err != nil {
		t.Fatal(err)
	}
	got := make([]Slot, 3)
	if err := st.ReadBucket(2, 1, got); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i].ID != src[i].ID || got[i].Leaf != src[i].Leaf {
			t.Errorf("slot %d: got %+v, want %+v", i, got[i], src[i])
		}
		if got[i].Payload != nil {
			t.Errorf("slot %d: MetaStore returned payload", i)
		}
	}
	// Single-slot ops.
	if err := st.WriteSlot(4, 9, 1, Slot{ID: 42, Leaf: 9}); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := st.ReadSlot(4, 9, 1, &s); err != nil {
		t.Fatal(err)
	}
	if s.ID != 42 || s.Leaf != 9 {
		t.Errorf("ReadSlot = %+v, want ID 42 leaf 9", s)
	}
}

func TestMetaStoreBounds(t *testing.T) {
	g := testGeom(t, 0)
	st := NewMetaStore(g)
	buf := make([]Slot, 3)
	if err := st.ReadBucket(-1, 0, buf); err == nil {
		t.Error("negative level accepted")
	}
	if err := st.ReadBucket(g.Levels(), 0, buf); err == nil {
		t.Error("level past leaves accepted")
	}
	if err := st.ReadBucket(2, 4, buf); err == nil {
		t.Error("node out of range accepted")
	}
	if err := st.ReadBucket(0, 0, make([]Slot, 2)); err == nil {
		t.Error("wrong buffer size accepted")
	}
	if err := st.WriteBucket(0, 0, make([]Slot, 5)); err == nil {
		t.Error("wrong src size accepted")
	}
	var s Slot
	if err := st.ReadSlot(0, 0, 3, &s); err == nil {
		t.Error("slot out of range accepted")
	}
	if err := st.WriteSlot(0, 0, -1, s); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestPayloadStoreRoundTrip(t *testing.T) {
	g := testGeom(t, 16)
	st, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte{0xAB}, 16)
	src := []Slot{{ID: 1, Leaf: 2, Payload: pay}, DummySlot(), {ID: 3, Leaf: 0, Payload: bytes.Repeat([]byte{0x01}, 16)}}
	if err := st.WriteBucket(1, 1, src); err != nil {
		t.Fatal(err)
	}
	got := make([]Slot, 3)
	if err := st.ReadBucket(1, 1, got); err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 1 || !bytes.Equal(got[0].Payload, pay) {
		t.Errorf("slot 0 mismatch: %+v", got[0])
	}
	if !got[1].Dummy() || got[1].Payload != nil {
		t.Errorf("slot 1 should be dummy: %+v", got[1])
	}
	// Returned payload is a copy: mutating it must not affect the store.
	got[0].Payload[0] = 0xFF
	again := make([]Slot, 3)
	if err := st.ReadBucket(1, 1, again); err != nil {
		t.Fatal(err)
	}
	if again[0].Payload[0] != 0xAB {
		t.Error("store payload aliased caller slice")
	}
	// Wrong payload length rejected.
	if err := st.WriteSlot(0, 0, 0, Slot{ID: 5, Payload: []byte{1, 2}}); err == nil {
		t.Error("short payload accepted")
	}
	// Overwriting with a dummy clears.
	if err := st.WriteSlot(1, 1, 0, DummySlot()); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := st.ReadSlot(1, 1, 0, &s); err != nil {
		t.Fatal(err)
	}
	if !s.Dummy() {
		t.Errorf("dummy overwrite failed: %+v", s)
	}
}

func TestPayloadStoreRequiresBlockSize(t *testing.T) {
	g := testGeom(t, 0)
	if _, err := NewPayloadStore(g, nil); err == nil {
		t.Error("BlockSize=0 accepted")
	}
}

// xorSealer is a toy Sealer for store-level tests (the real AES sealer is
// tested in internal/crypto and in the integration tests).
type xorSealer struct{ key byte }

func (x *xorSealer) SealedSize(plain int) int { return plain + 1 }
func (x *xorSealer) Seal(plain []byte) ([]byte, error) {
	out := make([]byte, len(plain)+1)
	out[0] = 0x5A
	for i, b := range plain {
		out[i+1] = b ^ x.key
	}
	return out, nil
}
func (x *xorSealer) Open(sealed []byte) ([]byte, error) {
	out := make([]byte, len(sealed)-1)
	for i := range out {
		out[i] = sealed[i+1] ^ x.key
	}
	return out, nil
}

func TestPayloadStoreSealed(t *testing.T) {
	g := testGeom(t, 8)
	st, err := NewPayloadStore(g, &xorSealer{key: 0x77})
	if err != nil {
		t.Fatal(err)
	}
	pay := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := st.WriteSlot(3, 2, 1, Slot{ID: 11, Leaf: 4, Payload: pay}); err != nil {
		t.Fatal(err)
	}
	// The arena must not contain the plaintext.
	if bytes.Contains(st.arena, pay) {
		t.Error("plaintext visible in sealed arena")
	}
	var s Slot
	if err := st.ReadSlot(3, 2, 1, &s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Payload, pay) {
		t.Errorf("sealed round trip = %v, want %v", s.Payload, pay)
	}
}

type recordTicker struct{ events []int }

func (r *recordTicker) OnTransfer(bytes int) { r.events = append(r.events, bytes) }

func TestCountingStore(t *testing.T) {
	g := testGeom(t, 32)
	tick := &recordTicker{}
	cs := NewCountingStore(NewMetaStore(g), tick)
	buf := make([]Slot, 3)
	if err := cs.ReadBucket(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := cs.WriteBucket(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := cs.ReadSlot(1, 0, 0, &s); err != nil {
		t.Fatal(err)
	}
	if err := cs.WriteSlot(1, 0, 0, s); err != nil {
		t.Fatal(err)
	}
	c := cs.Counters()
	if c.BucketReads != 1 || c.BucketWrites != 1 {
		t.Errorf("bucket counts = %d/%d, want 1/1", c.BucketReads, c.BucketWrites)
	}
	if c.SlotReads != 4 || c.SlotWrites != 4 {
		t.Errorf("slot counts = %d/%d, want 4/4 (3+1 each way)", c.SlotReads, c.SlotWrites)
	}
	if c.BytesRead != 4*32 || c.BytesWritten != 4*32 {
		t.Errorf("byte counts = %d/%d, want 128/128", c.BytesRead, c.BytesWritten)
	}
	slots, bytesMoved := c.Total()
	if slots != 8 || bytesMoved != 256 {
		t.Errorf("Total = %d slots %d bytes, want 8/256", slots, bytesMoved)
	}
	if len(tick.events) != 4 {
		t.Errorf("ticker saw %d events, want 4", len(tick.events))
	}
	prev := cs.Counters()
	if err := cs.ReadSlot(1, 0, 0, &s); err != nil {
		t.Fatal(err)
	}
	d := cs.Counters().Sub(prev)
	if d.SlotReads != 1 || d.SlotWrites != 0 {
		t.Errorf("windowed delta = %+v", d)
	}
	cs.ResetCounters()
	if c := cs.Counters(); c.SlotReads != 0 {
		t.Error("reset failed")
	}
}
