package oram

import (
	"fmt"
	"math/rand"
)

// Timer observes client-side request boundaries for the timing model.
// memsim.Meter implements it; a nil Timer disables simulated timing.
type Timer interface {
	// OnPathRequest is charged once per path-granularity round trip to
	// server storage (path read, path write-back, dummy read, ...).
	OnPathRequest()
	// OnStashWork is charged for client-side metadata management over the
	// given number of blocks (stash scan/insert, position-map updates).
	OnStashWork(blocks int)
}

// EvictConfig controls background eviction (§II-E, §VIII-E): when the stash
// exceeds High blocks, dummy reads are issued until it drains to Low.
type EvictConfig struct {
	Enabled bool
	High    int
	Low     int
}

// PaperEvict is the paper's measurement configuration (§VIII-E): "dummy
// reads are triggered whenever the stash size grows above 500 entries, and
// a series of dummy reads are performed until the stash size reduces to 50".
var PaperEvict = EvictConfig{Enabled: true, High: 500, Low: 50}

// AccessStats are the client-side per-run statistics the paper reports:
// dummy reads per access (Table II), path read/write counts (the inputs to
// Fig. 7's speedups and Fig. 9's traffic reduction), and stash behaviour
// (Fig. 8 via Stash().Peak and sampled sizes).
type AccessStats struct {
	Accesses   uint64 // logical block accesses requested by the application
	StashHits  uint64 // accesses served from the stash without a path read
	PathReads  uint64 // real path reads (excluding dummy reads)
	PathWrites uint64 // path write-backs paired with real reads
	DummyReads uint64 // background-eviction path read+write pairs
	Remaps     uint64 // uniform re-assignments of a block's leaf
}

// DummyReadsPerAccess returns Table II's metric.
func (s AccessStats) DummyReadsPerAccess() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.DummyReads) / float64(s.Accesses)
}

// Sub returns the difference s - prev for windowed measurement.
func (s AccessStats) Sub(prev AccessStats) AccessStats {
	return AccessStats{
		Accesses:   s.Accesses - prev.Accesses,
		StashHits:  s.StashHits - prev.StashHits,
		PathReads:  s.PathReads - prev.PathReads,
		PathWrites: s.PathWrites - prev.PathWrites,
		DummyReads: s.DummyReads - prev.DummyReads,
		Remaps:     s.Remaps - prev.Remaps,
	}
}

// ClientConfig configures a PathORAM client.
type ClientConfig struct {
	// Store is the server storage. Wrap it in a CountingStore to measure
	// traffic.
	Store Store
	// Rand drives leaf selection. Must be non-nil; seed it for
	// reproducible experiments.
	Rand *rand.Rand
	// Evict is the background-eviction policy.
	Evict EvictConfig
	// Timer receives simulated-time events; may be nil.
	Timer Timer
	// StashHits, when true (the paper's description, §II-C step 1:
	// "If the block is already in the stash, it is immediately
	// provided"), serves stash-resident blocks without touching the
	// server. When false the client always performs a path read, as in
	// the original PathORAM presentation.
	StashHits bool
	// Blocks is the number of real blocks (dense IDs 0..Blocks-1).
	Blocks uint64
	// PosMap overrides the position map implementation (default: a flat
	// in-client PosMap). Use NewRecursiveMap for O(log N) client state.
	PosMap PositionMap
}

// Client is a PathORAM client (§II-C): position map + stash on the trusted
// side, tree on the untrusted Store. It is both the paper's baseline and
// the engine under the LAORAM client in internal/core, which composes the
// exported ReadPath/WriteBackPath/DummyRead primitives with look-ahead path
// assignment.
type Client struct {
	geom  *Geometry
	store Store
	pos   PositionMap
	stash *Stash
	rng   *rand.Rand
	evict EvictConfig
	timer Timer
	stats AccessStats

	stashHits bool
	// bucketBufs[level] is a reusable read buffer sized to the level's
	// bucket capacity.
	bucketBufs [][]Slot
	// slotBacking[level][slot] is the payload buffer re-armed into
	// bucketBufs before every read, so payload-bearing stores can decrypt
	// into client-owned memory instead of allocating (nil when the
	// geometry has no payloads). The stash copies on Put, so recycling
	// these buffers across reads is safe.
	slotBacking [][][]byte
	// writeBuf is a reusable write buffer sized to the largest bucket.
	writeBuf []Slot
	// pathWriteBufs[level] are reusable write buffers for single-round-trip
	// path write-backs (PathStore stores), allocated on first use.
	pathWriteBufs [][]Slot
	// planner is the reusable greedy write-back planner: WriteBackPath
	// allocates nothing in steady state.
	planner evictPlanner
	// multi holds the scratch of the multi-path operations (ReadPaths /
	// WriteBackPaths); see multipath.go.
	multi multiScratch
}

// NewClient validates cfg and builds a client. The tree starts empty; call
// Load (or perform writes) to populate it.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("oram: ClientConfig.Store is required")
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("oram: ClientConfig.Rand is required")
	}
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("oram: ClientConfig.Blocks must be > 0")
	}
	g := cfg.Store.Geometry()
	if z := uint64(g.BucketSize(g.LeafBits())); g.Leaves() < (cfg.Blocks+z-1)/z {
		return nil, fmt.Errorf("oram: tree too small: %d leaves for %d blocks", g.Leaves(), cfg.Blocks)
	}
	if cfg.Evict.Enabled {
		if cfg.Evict.High <= 0 || cfg.Evict.Low < 0 || cfg.Evict.Low > cfg.Evict.High {
			return nil, fmt.Errorf("oram: invalid eviction thresholds high=%d low=%d", cfg.Evict.High, cfg.Evict.Low)
		}
	}
	pm := cfg.PosMap
	if pm == nil {
		pm = NewPosMap(cfg.Blocks)
	}
	if pm.Len() < cfg.Blocks {
		return nil, fmt.Errorf("oram: position map covers %d blocks, need %d", pm.Len(), cfg.Blocks)
	}
	c := &Client{
		geom:      g,
		store:     cfg.Store,
		pos:       pm,
		stash:     NewStash(),
		rng:       cfg.Rand,
		evict:     cfg.Evict,
		timer:     cfg.Timer,
		stashHits: cfg.StashHits,
	}
	c.bucketBufs = make([][]Slot, g.Levels())
	maxZ := 0
	for lvl := 0; lvl < g.Levels(); lvl++ {
		z := g.BucketSize(lvl)
		c.bucketBufs[lvl] = make([]Slot, z)
		if z > maxZ {
			maxZ = z
		}
	}
	c.writeBuf = make([]Slot, maxZ)
	if bs := g.BlockSize(); bs > 0 {
		// One arena, sliced per path slot, backs every read buffer.
		total := 0
		for lvl := 0; lvl < g.Levels(); lvl++ {
			total += g.BucketSize(lvl)
		}
		arena := make([]byte, total*bs)
		c.slotBacking = make([][][]byte, g.Levels())
		off := 0
		for lvl := 0; lvl < g.Levels(); lvl++ {
			z := g.BucketSize(lvl)
			c.slotBacking[lvl] = make([][]byte, z)
			for i := 0; i < z; i++ {
				c.slotBacking[lvl][i] = arena[off : off+bs : off+bs]
				off += bs
			}
		}
	}
	return c, nil
}

// rearmBucket points the read buffer's payload slices back at the client's
// recycled backing arena before a store read. Stores overwrite (or, for
// payload-bearing local stores, decrypt into) these buffers; whatever the
// store leaves behind is re-armed before the next read, so nothing the
// client retains can alias them — the stash copies on Put.
func (c *Client) rearmBucket(lvl int) {
	if c.slotBacking == nil {
		return
	}
	buf := c.bucketBufs[lvl]
	backing := c.slotBacking[lvl]
	for i := range buf {
		buf[i].Payload = backing[i]
	}
}

// Geometry returns the tree shape.
func (c *Client) Geometry() *Geometry { return c.geom }

// Store returns the server storage the client talks to.
func (c *Client) Store() Store { return c.store }

// PosMap exposes the position map (trusted client state). The LAORAM layer
// uses it to install look-ahead path assignments.
func (c *Client) PosMap() PositionMap { return c.pos }

// Stash exposes the stash (trusted client state).
func (c *Client) Stash() *Stash { return c.stash }

// Rand returns the client's random source.
func (c *Client) Rand() *rand.Rand { return c.rng }

// Stats returns a snapshot of the access statistics.
func (c *Client) Stats() AccessStats { return c.stats }

// StatsMut returns the live statistics for composing clients (the LAORAM
// layer counts its superblock-granularity path operations into the same
// ledger so that dummy reads, issued via MaybeEvict, land in one place).
func (c *Client) StatsMut() *AccessStats { return &c.stats }

// ResetStats zeroes the access statistics.
func (c *Client) ResetStats() { c.stats = AccessStats{} }

// RandomLeaf draws a uniform leaf, the remap primitive of §II-C step 4.
func (c *Client) RandomLeaf() Leaf {
	return Leaf(c.rng.Int63n(int64(c.geom.Leaves())))
}

// ReadPath fetches every bucket on the path to leaf, moving all real blocks
// into the stash (§II-C step 2); dummies are dropped. It performs no
// statistics accounting beyond timing: callers decide whether the read was
// a real access or a dummy. When the store implements PathStore the whole
// path moves in one store operation (one network round trip on a remote
// store); slot processing order — and therefore every downstream decision —
// is identical either way.
func (c *Client) ReadPath(leaf Leaf) error {
	if !c.geom.ValidLeaf(leaf) {
		return fmt.Errorf("oram: ReadPath: invalid leaf %d", leaf)
	}
	if c.timer != nil {
		c.timer.OnPathRequest()
	}
	moved := 0
	if ps, ok := c.store.(PathStore); ok {
		for lvl := range c.bucketBufs {
			c.rearmBucket(lvl)
		}
		if err := ps.ReadPath(leaf, c.bucketBufs); err != nil {
			return fmt.Errorf("oram: ReadPath: %w", err)
		}
		for lvl := range c.bucketBufs {
			n, err := c.ingestBucket(c.bucketBufs[lvl])
			if err != nil {
				return err
			}
			moved += n
		}
	} else {
		for lvl := 0; lvl < c.geom.Levels(); lvl++ {
			node := c.geom.NodeAt(leaf, lvl)
			c.rearmBucket(lvl)
			buf := c.bucketBufs[lvl]
			if err := c.store.ReadBucket(lvl, node, buf); err != nil {
				return fmt.Errorf("oram: ReadPath level %d: %w", lvl, err)
			}
			n, err := c.ingestBucket(buf)
			if err != nil {
				return err
			}
			moved += n
		}
	}
	if c.timer != nil && moved > 0 {
		c.timer.OnStashWork(moved)
	}
	return nil
}

// ingestBucket moves every real slot of buf into the stash (§II-C step 2;
// dummies are dropped), returning how many blocks moved. Both the
// path-granularity and bucket-granularity read paths funnel through here,
// so stash-ingestion semantics live in one place.
func (c *Client) ingestBucket(buf []Slot) (int, error) {
	moved := 0
	for i := range buf {
		if buf[i].Dummy() {
			continue
		}
		if err := c.stash.Put(buf[i].ID, buf[i].Leaf, buf[i].Payload); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// WriteBackPath greedily writes stashed blocks into the path to leaf
// (§II-C step 5), as deep as each block's assigned leaf allows, filling
// remaining slots with dummies. Blocks written are removed from the stash.
// When the store implements PathStore the whole path is written back in one
// store operation; placement is identical either way.
func (c *Client) WriteBackPath(leaf Leaf) error {
	if !c.geom.ValidLeaf(leaf) {
		return fmt.Errorf("oram: WriteBackPath: invalid leaf %d", leaf)
	}
	if c.timer != nil {
		c.timer.OnPathRequest()
	}
	plan := c.stash.evictPlanInto(&c.planner, c.geom, leaf)
	moved := 0
	if ps, ok := c.store.(PathStore); ok {
		if c.pathWriteBufs == nil {
			c.pathWriteBufs = make([][]Slot, c.geom.Levels())
			for lvl := range c.pathWriteBufs {
				c.pathWriteBufs[lvl] = make([]Slot, c.geom.BucketSize(lvl))
			}
		}
		for lvl := 0; lvl < c.geom.Levels(); lvl++ {
			buf := c.pathWriteBufs[lvl]
			i := 0
			for _, id := range plan[lvl] {
				l, _ := c.stash.Leaf(id)
				p, _ := c.stash.Payload(id)
				buf[i] = Slot{ID: id, Leaf: l, Payload: p}
				i++
			}
			moved += i
			for ; i < len(buf); i++ {
				buf[i] = DummySlot()
			}
		}
		if err := ps.WritePath(leaf, c.pathWriteBufs); err != nil {
			return fmt.Errorf("oram: WriteBackPath: %w", err)
		}
		for lvl := range plan {
			for _, id := range plan[lvl] {
				c.stash.Remove(id)
			}
		}
	} else {
		for lvl := 0; lvl < c.geom.Levels(); lvl++ {
			node := c.geom.NodeAt(leaf, lvl)
			z := c.geom.BucketSize(lvl)
			buf := c.writeBuf[:z]
			i := 0
			for _, id := range plan[lvl] {
				l, _ := c.stash.Leaf(id)
				p, _ := c.stash.Payload(id)
				buf[i] = Slot{ID: id, Leaf: l, Payload: p}
				i++
			}
			moved += i
			for ; i < z; i++ {
				buf[i] = DummySlot()
			}
			if err := c.store.WriteBucket(lvl, node, buf); err != nil {
				return fmt.Errorf("oram: WriteBackPath level %d: %w", lvl, err)
			}
			for _, id := range plan[lvl] {
				c.stash.Remove(id)
			}
		}
	}
	if c.timer != nil && moved > 0 {
		c.timer.OnStashWork(moved)
	}
	return nil
}

// DummyRead performs one background-eviction round (§II-E): read a
// uniformly random path and write it straight back with greedy stash
// placement, remapping nothing. Counted in stats.DummyReads.
func (c *Client) DummyRead() error {
	leaf := c.RandomLeaf()
	if err := c.ReadPath(leaf); err != nil {
		return err
	}
	if err := c.WriteBackPath(leaf); err != nil {
		return err
	}
	c.stats.DummyReads++
	return nil
}

// MaybeEvict runs background eviction if the stash is above the high-water
// mark, draining to the low-water mark. Returns the number of dummy reads
// issued.
func (c *Client) MaybeEvict() (int, error) {
	if !c.evict.Enabled || c.stash.Len() <= c.evict.High {
		return 0, nil
	}
	n := 0
	for c.stash.Len() > c.evict.Low {
		if err := c.DummyRead(); err != nil {
			return n, err
		}
		n++
		// Safety valve: with a pathological configuration (e.g. Low
		// smaller than the steady-state stash of an over-full tree)
		// eviction cannot make progress; bail out rather than spin.
		if n > 64 && c.stash.Len() > c.evict.High {
			return n, fmt.Errorf("oram: background eviction not draining (stash=%d after %d dummy reads)", c.stash.Len(), n)
		}
	}
	return n, nil
}

// Access performs one PathORAM access (§II-C): look up the block's path,
// fetch it, serve the operation, remap the block uniformly, write the path
// back, then run background eviction. For OpRead the returned slice is a
// copy owned by the caller; for OpWrite, data is copied in.
func (c *Client) Access(op Op, id BlockID, data []byte) ([]byte, error) {
	return c.accessInto(op, id, data, nil)
}

// ReadInto is an oblivious read that copies the payload into buf's
// capacity (growing it only when too small) instead of a fresh allocation,
// returning the filled slice — the steady-state training loop's form of
// Access(OpRead): with a recycled buffer the whole sealed access cycle is
// allocation-free. The access is indistinguishable from Access on the
// memory bus; only the ownership of the returned bytes differs (they alias
// buf, which the caller must not hand to concurrent readers).
func (c *Client) ReadInto(id BlockID, buf []byte) ([]byte, error) {
	if buf == nil {
		// A nil buf must still mean "reuse nothing", not "fresh copy",
		// so the zero-capacity slice keeps the copy-into semantics.
		buf = []byte{}
	}
	return c.accessInto(OpRead, id, nil, buf)
}

// accessInto is the shared access cycle. dst non-nil directs an OpRead's
// result into dst's capacity (ReadInto); nil returns a fresh copy
// (Access).
func (c *Client) accessInto(op Op, id BlockID, data, dst []byte) ([]byte, error) {
	if uint64(id) >= c.pos.Len() {
		return nil, fmt.Errorf("oram: block %d out of range (have %d blocks)", id, c.pos.Len())
	}
	c.stats.Accesses++

	if c.stashHits && c.stash.Contains(id) {
		c.stats.StashHits++
		out, err := c.serveFromStash(op, id, data, dst)
		if err != nil {
			return nil, err
		}
		_, err = c.MaybeEvict()
		return out, err
	}

	leaf := c.pos.Get(id)
	if leaf == NoLeaf {
		// First-ever touch of this block: it exists nowhere. A write
		// creates it in the stash; a read is an error.
		if op != OpWrite {
			return nil, fmt.Errorf("oram: read of unwritten block %d", id)
		}
		newLeaf := c.RandomLeaf()
		c.pos.Set(id, newLeaf)
		c.stats.Remaps++
		if err := c.stash.Put(id, newLeaf, data); err != nil {
			return nil, err
		}
		// Obliviousness: the bus must still see one path read + write,
		// otherwise "first write" is distinguishable from an update.
		cover := c.RandomLeaf()
		if err := c.ReadPath(cover); err != nil {
			return nil, err
		}
		c.stats.PathReads++
		if err := c.WriteBackPath(cover); err != nil {
			return nil, err
		}
		c.stats.PathWrites++
		_, err := c.MaybeEvict()
		return nil, err
	}

	if err := c.ReadPath(leaf); err != nil {
		return nil, err
	}
	c.stats.PathReads++
	if !c.stash.Contains(id) {
		return nil, fmt.Errorf("oram: block %d not found on its assigned path %d (tree corrupt)", id, leaf)
	}
	// Remap uniformly before write-back (§II-C step 4).
	newLeaf := c.RandomLeaf()
	c.pos.Set(id, newLeaf)
	c.stash.SetLeaf(id, newLeaf)
	c.stats.Remaps++

	out, err := c.serveFromStash(op, id, data, dst)
	if err != nil {
		return nil, err
	}
	if err := c.WriteBackPath(leaf); err != nil {
		return nil, err
	}
	c.stats.PathWrites++
	if _, err := c.MaybeEvict(); err != nil {
		return nil, err
	}
	return out, nil
}

// Read is shorthand for Access(OpRead, id, nil).
func (c *Client) Read(id BlockID) ([]byte, error) { return c.Access(OpRead, id, nil) }

// Write is shorthand for Access(OpWrite, id, data).
func (c *Client) Write(id BlockID, data []byte) error {
	_, err := c.Access(OpWrite, id, data)
	return err
}

// serveFromStash serves one operation against the stash-resident block.
// Reads return a copy (the stash's live slab bytes must never escape to
// callers: they are recycled on Remove) — into dst's capacity when dst is
// non-nil (ReadInto), freshly allocated otherwise; writes are copied in by
// the stash itself.
func (c *Client) serveFromStash(op Op, id BlockID, data, dst []byte) ([]byte, error) {
	switch op {
	case OpRead:
		p, ok := c.stash.Payload(id)
		if !ok {
			return nil, fmt.Errorf("oram: block %d vanished from stash", id)
		}
		if dst != nil {
			return copyInto(dst, p), nil
		}
		return cloneBytes(p), nil
	case OpWrite:
		if !c.stash.SetPayload(id, data) {
			return nil, fmt.Errorf("oram: block %d vanished from stash", id)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("oram: unknown op %v", op)
	}
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// copyInto copies p into dst's capacity, growing only when it is too
// small; a nil p (metadata-only store) yields nil.
func copyInto(dst, p []byte) []byte {
	if p == nil {
		return nil
	}
	if cap(dst) < len(p) {
		dst = make([]byte, len(p))
	}
	dst = dst[:len(p)]
	copy(dst, p)
	return dst
}
