package oram

import (
	"fmt"
	"slices"
)

// Stash is the client-side buffer for blocks that could not be written back
// into the tree (§II-E). It lives in trusted client memory (the trainer
// GPU's HBM in the paper); its accesses are invisible to the adversary.
//
// Layout: a slab — one flat entry array indexed by a BlockID → slot map —
// instead of a map of heap-allocated entries. Freed slots go on a free
// list and keep their payload backing buffers, so in steady state the
// read → stash → write-back cycle recycles memory instead of allocating:
// Put and SetPayload copy the payload into the slot's recycled buffer (the
// stash owns its bytes; callers keep ownership of what they pass in), and
// Payload returns the live slab slice without copying.
//
// The stash tracks its own high-water mark because stash growth is the
// paper's central scalability concern with superblocks (Fig. 8).
type Stash struct {
	entries []stashEntry
	free    []int32 // indices of vacant slab slots
	index   map[BlockID]int32
	peak    int
}

type stashEntry struct {
	id      BlockID
	leaf    Leaf
	payload []byte // nil, or buf[:n] — nil-ness is observable (metadata-only stores)
	buf     []byte // recycled backing storage; survives Remove
}

// setPayload copies p into the entry's recycled buffer (or records nil).
// Self-aliasing is fine: p may be the entry's own live payload slice.
func (e *stashEntry) setPayload(p []byte) {
	if p == nil {
		e.payload = nil
		return
	}
	if cap(e.buf) < len(p) {
		e.buf = make([]byte, len(p))
	}
	b := e.buf[:len(p)]
	copy(b, p)
	e.payload = b
}

// NewStash returns an empty stash.
func NewStash() *Stash {
	return &Stash{index: make(map[BlockID]int32)}
}

// Len returns the number of blocks currently stashed.
func (s *Stash) Len() int { return len(s.index) }

// Peak returns the high-water mark of Len over the stash's lifetime.
func (s *Stash) Peak() int { return s.peak }

// ResetPeak sets the high-water mark to the current size.
func (s *Stash) ResetPeak() { s.peak = len(s.index) }

// RestorePeak sets the high-water mark to a checkpointed value (clamped up
// to the current size, which is a lower bound by definition). Checkpoint
// restore uses this so post-restart stash statistics continue the original
// run's trajectory instead of restarting from the restored occupancy.
func (s *Stash) RestorePeak(p int) {
	if p < len(s.index) {
		p = len(s.index)
	}
	s.peak = p
}

// Contains reports whether id is stashed.
func (s *Stash) Contains(id BlockID) bool {
	_, ok := s.index[id]
	return ok
}

// Put inserts or replaces a block, copying payload into stash-owned
// (recycled) storage; the caller keeps ownership of payload. Dummy IDs are
// rejected: dummies are dropped at path-read time, never stashed (§II-C
// step 2).
func (s *Stash) Put(id BlockID, leaf Leaf, payload []byte) error {
	if id == DummyID {
		return fmt.Errorf("oram: refusing to stash a dummy block")
	}
	if i, ok := s.index[id]; ok {
		e := &s.entries[i]
		e.leaf = leaf
		e.setPayload(payload)
		return nil
	}
	var i int32
	if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.entries = append(s.entries, stashEntry{})
		i = int32(len(s.entries) - 1)
	}
	e := &s.entries[i]
	e.id = id
	e.leaf = leaf
	e.setPayload(payload)
	s.index[id] = i
	if len(s.index) > s.peak {
		s.peak = len(s.index)
	}
	return nil
}

// Leaf returns the assigned leaf of a stashed block.
func (s *Stash) Leaf(id BlockID) (Leaf, bool) {
	i, ok := s.index[id]
	if !ok {
		return NoLeaf, false
	}
	return s.entries[i].leaf, true
}

// SetLeaf reassigns the leaf of a stashed block.
func (s *Stash) SetLeaf(id BlockID, leaf Leaf) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	s.entries[i].leaf = leaf
	return true
}

// Payload returns the stored payload of a stashed block. The slice is the
// live slab storage, not a copy: it is valid until the block is removed,
// and mutating it mutates the stash (Client.Update relies on this; code
// returning payloads to untrusted callers must copy — see
// Client.serveFromStash).
func (s *Stash) Payload(id BlockID) ([]byte, bool) {
	i, ok := s.index[id]
	if !ok {
		return nil, false
	}
	return s.entries[i].payload, true
}

// SetPayload replaces the payload of a stashed block, copying it into
// stash-owned storage; the caller keeps ownership of payload.
func (s *Stash) SetPayload(id BlockID, payload []byte) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	s.entries[i].setPayload(payload)
	return true
}

// Remove deletes a block from the stash. The slab slot (and its payload
// buffer) is recycled for future inserts.
func (s *Stash) Remove(id BlockID) {
	i, ok := s.index[id]
	if !ok {
		return
	}
	delete(s.index, id)
	e := &s.entries[i]
	e.id = DummyID
	e.leaf = 0
	e.payload = nil
	s.free = append(s.free, i)
}

// ForEach calls fn for every stashed block, in unspecified order. fn must
// not mutate the stash.
func (s *Stash) ForEach(fn func(id BlockID, leaf Leaf)) {
	for id, i := range s.index {
		fn(id, s.entries[i].leaf)
	}
}

// IDs returns the stashed block IDs in unspecified order.
func (s *Stash) IDs() []BlockID {
	return s.AppendIDs(make([]BlockID, 0, len(s.index)))
}

// AppendIDs appends the stashed block IDs (unspecified order) to dst and
// returns the extended slice — the allocation-free form of IDs.
func (s *Stash) AppendIDs(dst []BlockID) []BlockID {
	for id := range s.index {
		dst = append(dst, id)
	}
	return dst
}

// evictPlanner holds the scratch state of the greedy write-back planner so
// a client can plan every eviction without allocating: the per-level
// candidate lists, the output plan and the spill list all keep their
// capacity across calls.
type evictPlanner struct {
	byDeepest [][]BlockID
	plan      [][]BlockID
	spill     []BlockID
}

func (ep *evictPlanner) reset(levels int) {
	if len(ep.byDeepest) != levels {
		ep.byDeepest = make([][]BlockID, levels)
		ep.plan = make([][]BlockID, levels)
	}
	for i := range ep.byDeepest {
		ep.byDeepest[i] = ep.byDeepest[i][:0]
		ep.plan[i] = nil
	}
	ep.spill = ep.spill[:0]
}

// evictPlan computes the greedy write-back for one path with a throwaway
// planner; tests and one-shot callers use it. The hot path goes through
// evictPlanInto with the client's reusable planner.
func (s *Stash) evictPlan(g *Geometry, target Leaf) [][]BlockID {
	var ep evictPlanner
	return s.evictPlanInto(&ep, g, target)
}

// evictPlanInto computes the greedy write-back for one path: which stashed
// blocks go into which level of the path to target. A stashed block with
// assigned leaf b can be placed at any level <= CommonLevel(target, b); the
// greedy policy (identical to the PathORAM reference implementation)
// places blocks as deep as possible, letting unplaced candidates spill
// toward the root.
//
// perLevel[lvl] lists the block IDs to write into the path bucket at lvl;
// each listed block must then be removed from the stash by the caller once
// written. Capacity respects the geometry's per-level bucket size, which is
// exactly where the fat-tree (§V) earns its keep: wider buckets near the
// root absorb the spill that a uniform tree would bounce back into the
// stash.
//
// The returned plan aliases ep's scratch and is valid until the next call
// with the same planner. Zero allocations in steady state.
func (s *Stash) evictPlanInto(ep *evictPlanner, g *Geometry, target Leaf) [][]BlockID {
	L := g.LeafBits()
	ep.reset(L + 1)
	for id, i := range s.index {
		d := g.CommonLevel(target, s.entries[i].leaf)
		ep.byDeepest[d] = append(ep.byDeepest[d], id)
	}
	// Map iteration order is randomised; sort so experiments are
	// bit-reproducible under a fixed seed.
	for _, ids := range ep.byDeepest {
		slices.Sort(ids)
	}
	for lvl := L; lvl >= 0; lvl-- {
		cand := ep.byDeepest[lvl]
		if len(ep.spill) > 0 {
			// Grow through the scratch slot so the capacity is kept.
			ep.byDeepest[lvl] = append(ep.byDeepest[lvl], ep.spill...)
			cand = ep.byDeepest[lvl]
			ep.spill = ep.spill[:0]
		}
		z := g.BucketSize(lvl)
		if len(cand) <= z {
			ep.plan[lvl] = cand
			continue
		}
		ep.plan[lvl] = cand[:z]
		ep.spill = append(ep.spill, cand[z:]...)
	}
	// Whatever is left in spill stays in the stash.
	return ep.plan
}
