package oram

import (
	"fmt"
	"sort"
)

// Stash is the client-side buffer for blocks that could not be written back
// into the tree (§II-E). It lives in trusted client memory (the trainer
// GPU's HBM in the paper); its accesses are invisible to the adversary.
//
// The stash tracks its own high-water mark because stash growth is the
// paper's central scalability concern with superblocks (Fig. 8).
type Stash struct {
	blocks map[BlockID]*stashEntry
	peak   int
}

type stashEntry struct {
	id      BlockID
	leaf    Leaf
	payload []byte
}

// NewStash returns an empty stash.
func NewStash() *Stash {
	return &Stash{blocks: make(map[BlockID]*stashEntry)}
}

// Len returns the number of blocks currently stashed.
func (s *Stash) Len() int { return len(s.blocks) }

// Peak returns the high-water mark of Len over the stash's lifetime.
func (s *Stash) Peak() int { return s.peak }

// ResetPeak sets the high-water mark to the current size.
func (s *Stash) ResetPeak() { s.peak = len(s.blocks) }

// Contains reports whether id is stashed.
func (s *Stash) Contains(id BlockID) bool {
	_, ok := s.blocks[id]
	return ok
}

// Put inserts or replaces a block. Dummy IDs are rejected: dummies are
// dropped at path-read time, never stashed (§II-C step 2).
func (s *Stash) Put(id BlockID, leaf Leaf, payload []byte) error {
	if id == DummyID {
		return fmt.Errorf("oram: refusing to stash a dummy block")
	}
	e, ok := s.blocks[id]
	if !ok {
		e = &stashEntry{id: id}
		s.blocks[id] = e
		if len(s.blocks) > s.peak {
			s.peak = len(s.blocks)
		}
	}
	e.leaf = leaf
	e.payload = payload
	return nil
}

// Leaf returns the assigned leaf of a stashed block.
func (s *Stash) Leaf(id BlockID) (Leaf, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return NoLeaf, false
	}
	return e.leaf, true
}

// SetLeaf reassigns the leaf of a stashed block.
func (s *Stash) SetLeaf(id BlockID, leaf Leaf) bool {
	e, ok := s.blocks[id]
	if !ok {
		return false
	}
	e.leaf = leaf
	return true
}

// Payload returns the stored payload of a stashed block (not a copy).
func (s *Stash) Payload(id BlockID) ([]byte, bool) {
	e, ok := s.blocks[id]
	if !ok {
		return nil, false
	}
	return e.payload, true
}

// SetPayload replaces the payload of a stashed block.
func (s *Stash) SetPayload(id BlockID, payload []byte) bool {
	e, ok := s.blocks[id]
	if !ok {
		return false
	}
	e.payload = payload
	return true
}

// Remove deletes a block from the stash.
func (s *Stash) Remove(id BlockID) { delete(s.blocks, id) }

// ForEach calls fn for every stashed block, in unspecified order. fn must
// not mutate the stash.
func (s *Stash) ForEach(fn func(id BlockID, leaf Leaf)) {
	for id, e := range s.blocks {
		fn(id, e.leaf)
	}
}

// IDs returns the stashed block IDs in unspecified order.
func (s *Stash) IDs() []BlockID {
	out := make([]BlockID, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	return out
}

// evictPlan computes the greedy write-back for one path: which stashed
// blocks go into which level of the path to target. A stashed block with
// assigned leaf b can be placed at any level <= CommonLevel(target, b); the
// greedy policy (identical to the PathORAM reference implementation)
// places blocks as deep as possible, letting unplaced candidates spill
// toward the root.
//
// perLevel[lvl] lists the block IDs to write into the path bucket at lvl;
// each listed block must then be removed from the stash by the caller once
// written. Capacity respects the geometry's per-level bucket size, which is
// exactly where the fat-tree (§V) earns its keep: wider buckets near the
// root absorb the spill that a uniform tree would bounce back into the
// stash.
func (s *Stash) evictPlan(g *Geometry, target Leaf) [][]BlockID {
	L := g.LeafBits()
	byDeepest := make([][]BlockID, L+1)
	for id, e := range s.blocks {
		d := g.CommonLevel(target, e.leaf)
		byDeepest[d] = append(byDeepest[d], id)
	}
	// Map iteration order is randomised; sort so experiments are
	// bit-reproducible under a fixed seed.
	for _, ids := range byDeepest {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	plan := make([][]BlockID, L+1)
	var spill []BlockID
	for lvl := L; lvl >= 0; lvl-- {
		cand := byDeepest[lvl]
		if len(spill) > 0 {
			cand = append(cand, spill...)
			spill = spill[:0]
		}
		z := g.BucketSize(lvl)
		if len(cand) <= z {
			plan[lvl] = cand
			continue
		}
		plan[lvl] = cand[:z]
		spill = append(spill, cand[z:]...)
	}
	// Whatever is left in spill stays in the stash.
	return plan
}
