package oram

import (
	"fmt"
	"slices"
)

// multiScratch is the reusable state of the multi-path operations. A
// client executes one ReadPaths/WriteBackPaths at a time (single-goroutine
// model), so one scratch set per client suffices and the superblock hot
// path — one bin = one ReadPaths + one WriteBackPaths — allocates nothing
// in steady state.
type multiScratch struct {
	seen   map[BucketRef]bool
	refs   []BucketRef // bucket union (read order or write order)
	ids    []BlockID   // sorted stash snapshot for deterministic placement
	placed map[BlockID]bool
	bufs   [][]Slot   // batch-transport buffers, grown on demand
	arena  [][][]byte // payload backing re-armed into bufs (blockSize > 0)
}

func (m *multiScratch) resetRefs() {
	if m.seen == nil {
		m.seen = make(map[BucketRef]bool, 64)
		m.placed = make(map[BlockID]bool, 64)
	}
	clear(m.seen)
	m.refs = m.refs[:0]
}

// batchBufs returns n slot buffers with bufs[i] sized to size(i), reusing
// prior capacity. Slots are zeroed and their payloads re-armed from a
// private arena (the same discipline as Client.rearmBucket): stale payload
// pointers from a previous write-back would alias live stash slabs, which
// a store honouring the decrypt-into-capacity contract must never be
// handed, while arena-backed slices let such a store read into recycled
// client memory instead of allocating.
func (m *multiScratch) batchBufs(n, blockSize int, size func(int) int) [][]Slot {
	if cap(m.bufs) < n {
		m.bufs = append(m.bufs[:cap(m.bufs)], make([][]Slot, n-cap(m.bufs))...)
		m.arena = append(m.arena[:cap(m.arena)], make([][][]byte, n-cap(m.arena))...)
	}
	m.bufs = m.bufs[:n]
	m.arena = m.arena[:n]
	for i := 0; i < n; i++ {
		z := size(i)
		if cap(m.bufs[i]) < z {
			m.bufs[i] = make([]Slot, z)
		}
		m.bufs[i] = m.bufs[i][:z]
		clear(m.bufs[i])
		if blockSize > 0 {
			if cap(m.arena[i]) < z {
				m.arena[i] = append(m.arena[i][:cap(m.arena[i])], make([][]byte, z-cap(m.arena[i]))...)
			}
			m.arena[i] = m.arena[i][:z]
			for j := 0; j < z; j++ {
				if m.arena[i][j] == nil {
					m.arena[i][j] = make([]byte, blockSize)
				}
				m.bufs[i][j].Payload = m.arena[i][j]
			}
		}
	}
	return m.bufs
}

// pathUnion collects the deduplicated buckets of a set of paths, level by
// level from the root, preserving the leaves' order within a level. This is
// the canonical bucket order both ReadPaths branches (batched and
// per-bucket) iterate, so results are independent of the transport. The
// returned slice aliases the client's scratch.
func (c *Client) pathUnion(leaves []Leaf) []BucketRef {
	g := c.geom
	m := &c.multi
	m.resetRefs()
	for lvl := 0; lvl < g.Levels(); lvl++ {
		for _, l := range leaves {
			b := BucketRef{Level: lvl, Node: g.NodeAt(l, lvl)}
			if m.seen[b] {
				continue
			}
			m.seen[b] = true
			m.refs = append(m.refs, b)
		}
	}
	return m.refs
}

// ReadPaths fetches the union of buckets across several paths in one
// operation, reading each shared bucket exactly once (paths overlap at
// least at the root, and batched fetches of nearby leaves share long
// prefixes). All real blocks land in the stash. This is the paper's
// batch-granularity fetch: "The GPU then issues read request to all the
// paths associated with the embedding entries in the upcoming training
// batch and caches them locally" (§IV-A). When the store implements
// BatchStore, the whole deduplicated union moves in a single store
// operation — one network frame on a remote store.
func (c *Client) ReadPaths(leaves []Leaf) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return c.ReadPath(leaves[0])
	}
	g := c.geom
	for _, l := range leaves {
		if !g.ValidLeaf(l) {
			return fmt.Errorf("oram: ReadPaths: invalid leaf %d", l)
		}
	}
	refs := c.pathUnion(leaves)
	moved := 0
	if bs, ok := c.store.(BatchStore); ok && batchWorthwhile(c.store) {
		bufs := c.multi.batchBufs(len(refs), g.BlockSize(), func(i int) int { return g.BucketSize(refs[i].Level) })
		if err := bs.ReadBuckets(refs, bufs); err != nil {
			return fmt.Errorf("oram: ReadPaths: %w", err)
		}
		for _, buf := range bufs {
			n, err := c.ingestBucket(buf)
			if err != nil {
				return err
			}
			moved += n
		}
	} else {
		for _, r := range refs {
			c.rearmBucket(r.Level)
			buf := c.bucketBufs[r.Level]
			if err := c.store.ReadBucket(r.Level, r.Node, buf); err != nil {
				return fmt.Errorf("oram: ReadPaths level %d node %d: %w", r.Level, r.Node, err)
			}
			n, err := c.ingestBucket(buf)
			if err != nil {
				return err
			}
			moved += n
		}
	}
	if c.timer != nil {
		for range leaves {
			c.timer.OnPathRequest()
		}
		if moved > 0 {
			c.timer.OnStashWork(moved)
		}
	}
	return nil
}

// WriteBackPaths writes a set of previously read paths back in one joint
// operation. Paths overlap (every path shares at least the root bucket), so
// writing them back one at a time would let a later path's write-back
// clobber blocks the earlier one just placed in a shared bucket. The joint
// plan writes every bucket in the union exactly once; with a BatchStore the
// whole union ships in a single store operation.
//
// Superblock clients need this whenever a single logical access fetches
// more than one path: LAORAM bins with cold members (§IV-A) and PrORAM
// dynamic superblocks right after a merge.
//
// Placement is the same greedy rule as WriteBackPath, generalised: each
// stash block goes into the deepest not-yet-full bucket of the union that
// lies on the path of the block's assigned leaf.
func (c *Client) WriteBackPaths(leaves []Leaf) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return c.WriteBackPath(leaves[0])
	}
	g := c.geom
	for _, l := range leaves {
		if !g.ValidLeaf(l) {
			return fmt.Errorf("oram: WriteBackPaths: invalid leaf %d", l)
		}
	}

	// The union of buckets, deepest level first; within a level, sorted
	// by node for determinism. Duplicates (shared prefixes) collapse.
	m := &c.multi
	m.resetRefs()
	buckets := m.refs
	for lvl := g.Levels() - 1; lvl >= 0; lvl-- {
		start := len(buckets)
		for _, l := range leaves {
			b := BucketRef{Level: lvl, Node: g.NodeAt(l, lvl)}
			if !m.seen[b] {
				m.seen[b] = true
				buckets = append(buckets, b)
			}
		}
		lvlBuckets := buckets[start:]
		slices.SortFunc(lvlBuckets, func(a, b BucketRef) int {
			switch {
			case a.Node < b.Node:
				return -1
			case a.Node > b.Node:
				return 1
			default:
				return 0
			}
		})
	}
	m.refs = buckets

	// Stable stash snapshot for deterministic placement.
	m.ids = c.stash.AppendIDs(m.ids[:0])
	ids := m.ids
	slices.Sort(ids)

	// place fills buf with the deepest-eligible stash blocks for bucket b
	// (padding with dummies) and returns how many real blocks it placed.
	clear(m.placed)
	placed := m.placed
	place := func(b BucketRef, buf []Slot) int {
		z := g.BucketSize(b.Level)
		n := 0
		for _, id := range ids {
			if n == z {
				break
			}
			if placed[id] {
				continue
			}
			bl, ok := c.stash.Leaf(id)
			if !ok {
				continue
			}
			if g.NodeAt(bl, b.Level) != b.Node {
				continue
			}
			p, _ := c.stash.Payload(id)
			buf[n] = Slot{ID: id, Leaf: bl, Payload: p}
			placed[id] = true
			n++
		}
		real := n
		for ; n < z; n++ {
			buf[n] = DummySlot()
		}
		return real
	}

	moved := 0
	if bs, ok := c.store.(BatchStore); ok && batchWorthwhile(c.store) {
		bufs := m.batchBufs(len(buckets), 0, func(i int) int { return g.BucketSize(buckets[i].Level) })
		for i, b := range buckets {
			moved += place(b, bufs[i])
		}
		if err := bs.WriteBuckets(buckets, bufs); err != nil {
			return fmt.Errorf("oram: WriteBackPaths: %w", err)
		}
	} else {
		for _, b := range buckets {
			buf := c.writeBuf[:g.BucketSize(b.Level)]
			moved += place(b, buf)
			if err := c.store.WriteBucket(b.Level, b.Node, buf); err != nil {
				return fmt.Errorf("oram: WriteBackPaths level %d node %d: %w", b.Level, b.Node, err)
			}
		}
	}
	for id := range placed {
		c.stash.Remove(id)
	}
	if c.timer != nil {
		for range leaves {
			c.timer.OnPathRequest()
		}
		if moved > 0 {
			c.timer.OnStashWork(moved)
		}
	}
	return nil
}
