package oram

import (
	"fmt"
	"sort"
)

// ReadPaths fetches the union of buckets across several paths in one
// operation, reading each shared bucket exactly once (paths overlap at
// least at the root, and batched fetches of nearby leaves share long
// prefixes). All real blocks land in the stash. This is the paper's
// batch-granularity fetch: "The GPU then issues read request to all the
// paths associated with the embedding entries in the upcoming training
// batch and caches them locally" (§IV-A).
func (c *Client) ReadPaths(leaves []Leaf) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return c.ReadPath(leaves[0])
	}
	g := c.geom
	for _, l := range leaves {
		if !g.ValidLeaf(l) {
			return fmt.Errorf("oram: ReadPaths: invalid leaf %d", l)
		}
	}
	type bucket struct {
		lvl  int
		node uint64
	}
	seen := make(map[bucket]bool, len(leaves)*g.Levels())
	moved := 0
	for lvl := 0; lvl < g.Levels(); lvl++ {
		for _, l := range leaves {
			b := bucket{lvl, g.NodeAt(l, lvl)}
			if seen[b] {
				continue
			}
			seen[b] = true
			buf := c.bucketBufs[lvl]
			if err := c.store.ReadBucket(lvl, b.node, buf); err != nil {
				return fmt.Errorf("oram: ReadPaths level %d node %d: %w", lvl, b.node, err)
			}
			for i := range buf {
				if buf[i].Dummy() {
					continue
				}
				if err := c.stash.Put(buf[i].ID, buf[i].Leaf, buf[i].Payload); err != nil {
					return err
				}
				moved++
			}
		}
	}
	if c.timer != nil {
		for range leaves {
			c.timer.OnPathRequest()
		}
		if moved > 0 {
			c.timer.OnStashWork(moved)
		}
	}
	return nil
}

// WriteBackPaths writes a set of previously read paths back in one joint
// operation. Paths overlap (every path shares at least the root bucket), so
// writing them back one at a time would let a later path's write-back
// clobber blocks the earlier one just placed in a shared bucket. The joint
// plan writes every bucket in the union exactly once.
//
// Superblock clients need this whenever a single logical access fetches
// more than one path: LAORAM bins with cold members (§IV-A) and PrORAM
// dynamic superblocks right after a merge.
//
// Placement is the same greedy rule as WriteBackPath, generalised: each
// stash block goes into the deepest not-yet-full bucket of the union that
// lies on the path of the block's assigned leaf.
func (c *Client) WriteBackPaths(leaves []Leaf) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return c.WriteBackPath(leaves[0])
	}
	g := c.geom
	for _, l := range leaves {
		if !g.ValidLeaf(l) {
			return fmt.Errorf("oram: WriteBackPaths: invalid leaf %d", l)
		}
	}

	// The union of buckets, deepest level first; within a level, sorted
	// by node for determinism. Duplicates (shared prefixes) collapse.
	type bucket struct {
		lvl  int
		node uint64
	}
	seen := make(map[bucket]bool, len(leaves)*g.Levels())
	var buckets []bucket
	for lvl := g.Levels() - 1; lvl >= 0; lvl-- {
		start := len(buckets)
		for _, l := range leaves {
			b := bucket{lvl, g.NodeAt(l, lvl)}
			if !seen[b] {
				seen[b] = true
				buckets = append(buckets, b)
			}
		}
		lvlBuckets := buckets[start:]
		sort.Slice(lvlBuckets, func(i, j int) bool { return lvlBuckets[i].node < lvlBuckets[j].node })
	}

	// Stable stash snapshot for deterministic placement.
	ids := c.stash.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	placed := make(map[BlockID]bool, len(ids))
	moved := 0
	for _, b := range buckets {
		z := g.BucketSize(b.lvl)
		buf := c.writeBuf[:z]
		n := 0
		for _, id := range ids {
			if n == z {
				break
			}
			if placed[id] {
				continue
			}
			bl, ok := c.stash.Leaf(id)
			if !ok {
				continue
			}
			if g.NodeAt(bl, b.lvl) != b.node {
				continue
			}
			p, _ := c.stash.Payload(id)
			buf[n] = Slot{ID: id, Leaf: bl, Payload: p}
			placed[id] = true
			n++
		}
		moved += n
		for ; n < z; n++ {
			buf[n] = DummySlot()
		}
		if err := c.store.WriteBucket(b.lvl, b.node, buf); err != nil {
			return fmt.Errorf("oram: WriteBackPaths level %d node %d: %w", b.lvl, b.node, err)
		}
	}
	for id := range placed {
		c.stash.Remove(id)
	}
	if c.timer != nil {
		for range leaves {
			c.timer.OnPathRequest()
		}
		if moved > 0 {
			c.timer.OnStashWork(moved)
		}
	}
	return nil
}
