package oram

import (
	"fmt"
	"sort"
)

// pathUnion collects the deduplicated buckets of a set of paths, level by
// level from the root, preserving the leaves' order within a level. This is
// the canonical bucket order both ReadPaths branches (batched and
// per-bucket) iterate, so results are independent of the transport.
func pathUnion(g *Geometry, leaves []Leaf) []BucketRef {
	seen := make(map[BucketRef]bool, len(leaves)*g.Levels())
	refs := make([]BucketRef, 0, len(leaves)*g.Levels())
	for lvl := 0; lvl < g.Levels(); lvl++ {
		for _, l := range leaves {
			b := BucketRef{Level: lvl, Node: g.NodeAt(l, lvl)}
			if seen[b] {
				continue
			}
			seen[b] = true
			refs = append(refs, b)
		}
	}
	return refs
}

// ReadPaths fetches the union of buckets across several paths in one
// operation, reading each shared bucket exactly once (paths overlap at
// least at the root, and batched fetches of nearby leaves share long
// prefixes). All real blocks land in the stash. This is the paper's
// batch-granularity fetch: "The GPU then issues read request to all the
// paths associated with the embedding entries in the upcoming training
// batch and caches them locally" (§IV-A). When the store implements
// BatchStore, the whole deduplicated union moves in a single store
// operation — one network frame on a remote store.
func (c *Client) ReadPaths(leaves []Leaf) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return c.ReadPath(leaves[0])
	}
	g := c.geom
	for _, l := range leaves {
		if !g.ValidLeaf(l) {
			return fmt.Errorf("oram: ReadPaths: invalid leaf %d", l)
		}
	}
	refs := pathUnion(g, leaves)
	moved := 0
	if bs, ok := c.store.(BatchStore); ok && batchWorthwhile(c.store) {
		bufs := make([][]Slot, len(refs))
		for i, r := range refs {
			bufs[i] = make([]Slot, g.BucketSize(r.Level))
		}
		if err := bs.ReadBuckets(refs, bufs); err != nil {
			return fmt.Errorf("oram: ReadPaths: %w", err)
		}
		for _, buf := range bufs {
			n, err := c.ingestBucket(buf)
			if err != nil {
				return err
			}
			moved += n
		}
	} else {
		for _, r := range refs {
			buf := c.bucketBufs[r.Level]
			if err := c.store.ReadBucket(r.Level, r.Node, buf); err != nil {
				return fmt.Errorf("oram: ReadPaths level %d node %d: %w", r.Level, r.Node, err)
			}
			n, err := c.ingestBucket(buf)
			if err != nil {
				return err
			}
			moved += n
		}
	}
	if c.timer != nil {
		for range leaves {
			c.timer.OnPathRequest()
		}
		if moved > 0 {
			c.timer.OnStashWork(moved)
		}
	}
	return nil
}

// WriteBackPaths writes a set of previously read paths back in one joint
// operation. Paths overlap (every path shares at least the root bucket), so
// writing them back one at a time would let a later path's write-back
// clobber blocks the earlier one just placed in a shared bucket. The joint
// plan writes every bucket in the union exactly once; with a BatchStore the
// whole union ships in a single store operation.
//
// Superblock clients need this whenever a single logical access fetches
// more than one path: LAORAM bins with cold members (§IV-A) and PrORAM
// dynamic superblocks right after a merge.
//
// Placement is the same greedy rule as WriteBackPath, generalised: each
// stash block goes into the deepest not-yet-full bucket of the union that
// lies on the path of the block's assigned leaf.
func (c *Client) WriteBackPaths(leaves []Leaf) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return c.WriteBackPath(leaves[0])
	}
	g := c.geom
	for _, l := range leaves {
		if !g.ValidLeaf(l) {
			return fmt.Errorf("oram: WriteBackPaths: invalid leaf %d", l)
		}
	}

	// The union of buckets, deepest level first; within a level, sorted
	// by node for determinism. Duplicates (shared prefixes) collapse.
	seen := make(map[BucketRef]bool, len(leaves)*g.Levels())
	var buckets []BucketRef
	for lvl := g.Levels() - 1; lvl >= 0; lvl-- {
		start := len(buckets)
		for _, l := range leaves {
			b := BucketRef{Level: lvl, Node: g.NodeAt(l, lvl)}
			if !seen[b] {
				seen[b] = true
				buckets = append(buckets, b)
			}
		}
		lvlBuckets := buckets[start:]
		sort.Slice(lvlBuckets, func(i, j int) bool { return lvlBuckets[i].Node < lvlBuckets[j].Node })
	}

	// Stable stash snapshot for deterministic placement.
	ids := c.stash.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// place fills buf with the deepest-eligible stash blocks for bucket b
	// (padding with dummies) and returns how many real blocks it placed.
	placed := make(map[BlockID]bool, len(ids))
	place := func(b BucketRef, buf []Slot) int {
		z := g.BucketSize(b.Level)
		n := 0
		for _, id := range ids {
			if n == z {
				break
			}
			if placed[id] {
				continue
			}
			bl, ok := c.stash.Leaf(id)
			if !ok {
				continue
			}
			if g.NodeAt(bl, b.Level) != b.Node {
				continue
			}
			p, _ := c.stash.Payload(id)
			buf[n] = Slot{ID: id, Leaf: bl, Payload: p}
			placed[id] = true
			n++
		}
		real := n
		for ; n < z; n++ {
			buf[n] = DummySlot()
		}
		return real
	}

	moved := 0
	if bs, ok := c.store.(BatchStore); ok && batchWorthwhile(c.store) {
		bufs := make([][]Slot, len(buckets))
		for i, b := range buckets {
			bufs[i] = make([]Slot, g.BucketSize(b.Level))
			moved += place(b, bufs[i])
		}
		if err := bs.WriteBuckets(buckets, bufs); err != nil {
			return fmt.Errorf("oram: WriteBackPaths: %w", err)
		}
	} else {
		for _, b := range buckets {
			buf := c.writeBuf[:g.BucketSize(b.Level)]
			moved += place(b, buf)
			if err := c.store.WriteBucket(b.Level, b.Node, buf); err != nil {
				return fmt.Errorf("oram: WriteBackPaths level %d node %d: %w", b.Level, b.Node, err)
			}
		}
	}
	for id := range placed {
		c.stash.Remove(id)
	}
	if c.timer != nil {
		for range leaves {
			c.timer.OnPathRequest()
		}
		if moved > 0 {
			c.timer.OnStashWork(moved)
		}
	}
	return nil
}
