package oram

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/crypto"
)

// parallel_test.go pins the crypto fan-out's determinism contract
// (DESIGN.md invariant 10): a PayloadStore with a multi-worker crypto pool
// must produce byte-identical server state — ciphertext arena included —
// and byte-identical reads, compared with the strictly serial store, for
// any mix of bucket, path and batch operations. The comparison uses
// same-key same-IV-prefix sealers (NewSealerWithPrefix), so any divergence
// in counter assignment or work partitioning shows up as differing bytes.

func parallelTestStores(t *testing.T, workers int) (serial, parallel *PayloadStore, pool *crypto.Pool) {
	t.Helper()
	g := MustGeometry(GeometryConfig{LeafBits: 6, LeafZ: 4, BlockSize: 48})
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*11 + 3)
	}
	var prefix [8]byte
	copy(prefix[:], "laoramIV")
	mk := func() *PayloadStore {
		s, err := crypto.NewSealerWithPrefix(key, prefix)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := NewPayloadStore(g, s)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	serial, parallel = mk(), mk()
	pool = crypto.NewPool(workers)
	t.Cleanup(pool.Close)
	if err := parallel.SetCryptoPool(pool); err != nil {
		t.Fatal(err)
	}
	return serial, parallel, pool
}

// randomBuckets draws a deduplicated set of bucket refs and fills write
// buffers with a deterministic mix of real and dummy slots.
func randomBuckets(g *Geometry, rng *rand.Rand, count int, nextID *uint64) ([]BucketRef, [][]Slot) {
	seen := map[BucketRef]bool{}
	var refs []BucketRef
	var bufs [][]Slot
	for len(refs) < count {
		lvl := rng.Intn(g.Levels())
		ref := BucketRef{Level: lvl, Node: uint64(rng.Intn(1 << uint(lvl)))}
		if seen[ref] {
			continue
		}
		seen[ref] = true
		z := g.BucketSize(lvl)
		buf := make([]Slot, z)
		for k := range buf {
			if rng.Intn(3) == 0 {
				buf[k] = DummySlot()
				continue
			}
			p := make([]byte, g.BlockSize())
			rng.Read(p)
			buf[k] = Slot{ID: BlockID(*nextID), Leaf: Leaf(rng.Intn(int(g.Leaves()))), Payload: p}
			*nextID++
		}
		refs = append(refs, ref)
		bufs = append(bufs, buf)
	}
	return refs, bufs
}

func snapshotBytes(t *testing.T, st *PayloadStore) []byte {
	t.Helper()
	var sb bytes.Buffer
	if err := st.Save(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes()
}

// TestParallelSealByteIdentical: identical operation sequences on a serial
// and a pooled store leave byte-identical trees, across worker widths and
// across bucket/path/batch write shapes interleaved in one counter stream.
func TestParallelSealByteIdentical(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial, parallel, _ := parallelTestStores(t, workers)
			g := serial.Geometry()
			rng := rand.New(rand.NewSource(int64(workers) * 97))
			var nextID uint64
			for round := 0; round < 12; round++ {
				switch round % 3 {
				case 0: // batched bucket union (multipath write-back shape)
					refs, bufs := randomBuckets(g, rng, 5+rng.Intn(8), &nextID)
					if err := serial.WriteBuckets(refs, bufs); err != nil {
						t.Fatal(err)
					}
					if err := parallel.WriteBuckets(refs, bufs); err != nil {
						t.Fatal(err)
					}
				case 1: // whole-path write-back
					leaf := Leaf(rng.Intn(int(g.Leaves())))
					src := make([][]Slot, g.Levels())
					for lvl := range src {
						src[lvl] = make([]Slot, g.BucketSize(lvl))
						for k := range src[lvl] {
							if rng.Intn(4) == 0 {
								src[lvl][k] = DummySlot()
							} else {
								p := make([]byte, g.BlockSize())
								rng.Read(p)
								src[lvl][k] = Slot{ID: BlockID(nextID), Leaf: Leaf(rng.Intn(int(g.Leaves()))), Payload: p}
								nextID++
							}
						}
					}
					if err := serial.WritePath(leaf, src); err != nil {
						t.Fatal(err)
					}
					if err := parallel.WritePath(leaf, src); err != nil {
						t.Fatal(err)
					}
				case 2: // single-bucket writes (the per-access shape)
					refs, bufs := randomBuckets(g, rng, 3, &nextID)
					for i := range refs {
						if err := serial.WriteBucket(refs[i].Level, refs[i].Node, bufs[i]); err != nil {
							t.Fatal(err)
						}
						if err := parallel.WriteBucket(refs[i].Level, refs[i].Node, bufs[i]); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if !bytes.Equal(snapshotBytes(t, serial), snapshotBytes(t, parallel)) {
				t.Fatal("parallel store's tree (ciphertext arena included) diverged from the serial store")
			}

			// Read everything back through both the batch and path fast
			// paths: decrypted slots must match the serial reads.
			var refs []BucketRef
			for lvl := 0; lvl < g.Levels(); lvl++ {
				for node := uint64(0); node < 1<<uint(lvl); node++ {
					refs = append(refs, BucketRef{Level: lvl, Node: node})
				}
			}
			mkBufs := func() [][]Slot {
				bufs := make([][]Slot, len(refs))
				for i, r := range refs {
					bufs[i] = make([]Slot, g.BucketSize(r.Level))
				}
				return bufs
			}
			want, got := mkBufs(), mkBufs()
			if err := serial.ReadBuckets(refs, want); err != nil {
				t.Fatal(err)
			}
			if err := parallel.ReadBuckets(refs, got); err != nil {
				t.Fatal(err)
			}
			for i := range refs {
				for k := range want[i] {
					w, gg := want[i][k], got[i][k]
					if w.ID != gg.ID || w.Leaf != gg.Leaf || !bytes.Equal(w.Payload, gg.Payload) {
						t.Fatalf("bucket %v slot %d: parallel read diverged", refs[i], k)
					}
				}
			}
		})
	}
}

// TestParallelPathRoundTrip: the PathStore fast path of a pooled store
// opens exactly what it sealed.
func TestParallelPathRoundTrip(t *testing.T) {
	_, parallel, _ := parallelTestStores(t, 4)
	g := parallel.Geometry()
	rng := rand.New(rand.NewSource(5))
	leaf := Leaf(3)
	src := make([][]Slot, g.Levels())
	var id uint64
	for lvl := range src {
		src[lvl] = make([]Slot, g.BucketSize(lvl))
		for k := range src[lvl] {
			p := make([]byte, g.BlockSize())
			rng.Read(p)
			src[lvl][k] = Slot{ID: BlockID(id), Leaf: leaf, Payload: p}
			id++
		}
	}
	if err := parallel.WritePath(leaf, src); err != nil {
		t.Fatal(err)
	}
	dst := make([][]Slot, g.Levels())
	for lvl := range dst {
		dst[lvl] = make([]Slot, g.BucketSize(lvl))
	}
	if err := parallel.ReadPath(leaf, dst); err != nil {
		t.Fatal(err)
	}
	for lvl := range src {
		for k := range src[lvl] {
			if src[lvl][k].ID != dst[lvl][k].ID || !bytes.Equal(src[lvl][k].Payload, dst[lvl][k].Payload) {
				t.Fatalf("level %d slot %d: path round trip mismatch", lvl, k)
			}
		}
	}
}

// TestBatchNativeProbe: a payload store advertises native batching exactly
// when a multi-worker pool is installed (so the multipath client only pays
// for batch buffers when the fan-out buys something), and SetCryptoPool
// rejects stores without a crypto sealer.
func TestBatchNativeProbe(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 4, BlockSize: 16})
	plain, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BatchNative() {
		t.Error("store without a pool claims native batching")
	}
	pool := crypto.NewPool(4)
	defer pool.Close()
	if err := plain.SetCryptoPool(pool); err == nil {
		t.Error("SetCryptoPool accepted a store without a crypto sealer")
	}
	key := make([]byte, 32)
	s, err := crypto.NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := NewPayloadStore(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sealed.SetCryptoPool(pool); err != nil {
		t.Fatal(err)
	}
	if !sealed.BatchNative() {
		t.Error("pooled sealed store does not claim native batching")
	}
	one := crypto.NewPool(1)
	defer one.Close()
	if err := sealed.SetCryptoPool(one); err != nil {
		t.Fatal(err)
	}
	if sealed.BatchNative() {
		t.Error("1-worker pool should keep the serial (non-batching) path")
	}
	// CountingStore forwards the probe, so the multipath client sees it.
	if err := sealed.SetCryptoPool(pool); err != nil {
		t.Fatal(err)
	}
	if !NewCountingStore(sealed, nil).BatchNative() {
		t.Error("CountingStore does not forward BatchNative from a pooled store")
	}
}
