package oram

import "fmt"

// Load bulk-initialises the ORAM with blocks 0..n-1, assigning each block
// the leaf returned by leafOf (nil means uniformly random) and the payload
// returned by payload (nil payloads suit metadata-only stores).
//
// This models the setup phase: in the paper's deployment the client streams
// the (encrypted) embedding table into the tree once before training; setup
// traffic is not part of any measured experiment, so Load writes slots
// directly instead of performing O(N) full accesses. Callers should reset
// store counters and client stats afterwards.
//
// Placement is greedy from the leaf up, exactly the invariant the ORAM
// maintains at run time: a block with leaf l may live in any bucket on the
// path to l. Blocks that find no free slot on their whole path stay in the
// stash (rare when leaves >= n and leaf buckets hold Z >= 2).
func (c *Client) Load(n uint64, leafOf func(BlockID) Leaf, payload func(BlockID) []byte) error {
	if n > c.pos.Len() {
		return fmt.Errorf("oram: Load of %d blocks exceeds configured %d", n, c.pos.Len())
	}
	g := c.geom
	fill := make([]uint8, g.TotalBuckets())
	// bucketNo maps (level, node) to a dense bucket index for the fill
	// tracking: level offsets in bucket (not slot) space.
	bucketNo := func(level int, node uint64) int64 {
		return int64((uint64(1)<<uint(level))-1) + int64(node)
	}
	var slot Slot
	for i := uint64(0); i < n; i++ {
		id := BlockID(i)
		var leaf Leaf
		if leafOf != nil {
			leaf = leafOf(id)
			if !g.ValidLeaf(leaf) {
				return fmt.Errorf("oram: Load: leafOf(%d) = %d invalid", id, leaf)
			}
		} else {
			leaf = c.RandomLeaf()
		}
		c.pos.Set(id, leaf)
		var data []byte
		if payload != nil {
			data = payload(id)
		}
		placed := false
		for lvl := g.Levels() - 1; lvl >= 0; lvl-- {
			node := g.NodeAt(leaf, lvl)
			b := bucketNo(lvl, node)
			z := g.BucketSize(lvl)
			if int(fill[b]) >= z {
				continue
			}
			slot = Slot{ID: id, Leaf: leaf, Payload: data}
			if err := c.store.WriteSlot(lvl, node, int(fill[b]), slot); err != nil {
				return fmt.Errorf("oram: Load block %d: %w", id, err)
			}
			fill[b]++
			placed = true
			break
		}
		if !placed {
			if err := c.stash.Put(id, leaf, data); err != nil {
				return err
			}
		}
	}
	return nil
}
