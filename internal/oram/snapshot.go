package oram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpoint/restore: embedding-table training runs for days and
// checkpoints regularly; losing the ORAM client state (position map +
// stash) strands every block in the tree. SaveState/LoadState serialise
// the trusted client state; the store implementations serialise the
// server-side tree. Both formats are versioned little-endian binary.
//
// The random source is deliberately not serialised: a restored client must
// be given a fresh (re-seeded) RNG, which affects only *which* uniform
// leaves future remaps draw — obliviousness is unaffected.

const snapshotMagic = 0x4C414F52414D5631 // "LAORAMV1"

// Snapshotter is the store-side checkpoint contract: MetaStore and
// PayloadStore implement it natively, CountingStore forwards to whatever it
// wraps. The remote server exposes it per shard so a node can persist (or
// roll back) its trees, and the chaos failover path restores every node
// from the same checkpoint so client position map and server trees stay in
// lockstep (DESIGN.md "Failure model").
type Snapshotter interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

var (
	_ Snapshotter = (*MetaStore)(nil)
	_ Snapshotter = (*PayloadStore)(nil)
	_ Snapshotter = (*CountingStore)(nil)
)

// Save forwards to the wrapped store's Snapshotter. Counters are traffic
// telemetry, not tree state — they are deliberately not serialised, the
// same way the client's RNG position is serialised separately from its
// position map.
func (cs *CountingStore) Save(w io.Writer) error {
	s, ok := cs.inner.(Snapshotter)
	if !ok {
		return fmt.Errorf("oram: wrapped %T does not support snapshots", cs.inner)
	}
	return s.Save(w)
}

// Load forwards to the wrapped store's Snapshotter.
func (cs *CountingStore) Load(r io.Reader) error {
	s, ok := cs.inner.(Snapshotter)
	if !ok {
		return fmt.Errorf("oram: wrapped %T does not support snapshots", cs.inner)
	}
	return s.Load(r)
}

// SaveState writes the client's trusted state (position map and stash).
// Only flat position maps are supported; a RecursiveMap's state already
// lives in its own ORAM stores and is saved with them.
func (c *Client) SaveState(w io.Writer) error {
	pm, ok := c.pos.(*PosMap)
	if !ok {
		return fmt.Errorf("oram: SaveState supports flat position maps; recursive maps persist via their stores")
	}
	bw := bufio.NewWriter(w)
	var u64 [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := put(snapshotMagic); err != nil {
		return err
	}
	if err := put(pm.Len()); err != nil {
		return err
	}
	for i := uint64(0); i < pm.Len(); i++ {
		if err := put(uint64(pm.leaves[i])); err != nil {
			return err
		}
	}
	// Stash: count, then (id, leaf, payloadLen, payload) sorted by ID
	// for deterministic output.
	ids := c.stash.IDs()
	sortBlockIDsStable(ids)
	if err := put(uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		leaf, _ := c.stash.Leaf(id)
		payload, _ := c.stash.Payload(id)
		if err := put(uint64(id)); err != nil {
			return err
		}
		if err := put(uint64(leaf)); err != nil {
			return err
		}
		if err := put(uint64(len(payload))); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState restores state saved by SaveState into this client. The client
// must have been built with the same Blocks count and a flat position map.
func (c *Client) LoadState(r io.Reader) error {
	pm, ok := c.pos.(*PosMap)
	if !ok {
		return fmt.Errorf("oram: LoadState requires a flat position map")
	}
	br := bufio.NewReader(r)
	var u64 [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	magic, err := get()
	if err != nil {
		return fmt.Errorf("oram: snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("oram: bad snapshot magic %#x", magic)
	}
	n, err := get()
	if err != nil {
		return err
	}
	if n != pm.Len() {
		return fmt.Errorf("oram: snapshot covers %d blocks, client configured for %d", n, pm.Len())
	}
	for i := uint64(0); i < n; i++ {
		v, err := get()
		if err != nil {
			return err
		}
		pm.leaves[i] = uint32(v)
	}
	// Rebuild the stash.
	c.stash = NewStash()
	count, err := get()
	if err != nil {
		return err
	}
	const maxStash = 1 << 24
	if count > maxStash {
		return fmt.Errorf("oram: snapshot stash of %d entries implausible", count)
	}
	for i := uint64(0); i < count; i++ {
		id, err := get()
		if err != nil {
			return err
		}
		leaf, err := get()
		if err != nil {
			return err
		}
		plen, err := get()
		if err != nil {
			return err
		}
		if plen > 1<<24 {
			return fmt.Errorf("oram: snapshot payload of %d bytes implausible", plen)
		}
		var payload []byte
		if plen > 0 {
			payload = make([]byte, plen)
			if _, err := io.ReadFull(br, payload); err != nil {
				return err
			}
		}
		if err := c.stash.Put(BlockID(id), Leaf(leaf), payload); err != nil {
			return err
		}
	}
	return nil
}

func sortBlockIDsStable(ids []BlockID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Save serialises the metadata-only server tree.
func (st *MetaStore) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var u64 [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := put(snapshotMagic + 1); err != nil {
		return err
	}
	if err := put(uint64(st.geom.TotalSlots())); err != nil {
		return err
	}
	for i := range st.ids {
		if err := put(st.ids[i]); err != nil {
			return err
		}
		if err := put(st.leaf[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load restores a MetaStore snapshot; the geometry must match.
func (st *MetaStore) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var u64 [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	magic, err := get()
	if err != nil {
		return err
	}
	if magic != snapshotMagic+1 {
		return fmt.Errorf("oram: bad store snapshot magic %#x", magic)
	}
	n, err := get()
	if err != nil {
		return err
	}
	if n != uint64(st.geom.TotalSlots()) {
		return fmt.Errorf("oram: store snapshot has %d slots, geometry needs %d", n, st.geom.TotalSlots())
	}
	for i := range st.ids {
		if st.ids[i], err = get(); err != nil {
			return err
		}
		if st.leaf[i], err = get(); err != nil {
			return err
		}
	}
	return nil
}

// Save serialises the payload-bearing server tree (including sealed
// payload bytes exactly as stored, so a sealed store restores sealed).
func (st *PayloadStore) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var u64 [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := put(snapshotMagic + 2); err != nil {
		return err
	}
	if err := put(uint64(st.geom.TotalSlots())); err != nil {
		return err
	}
	if err := put(uint64(st.stride)); err != nil {
		return err
	}
	for i := range st.ids {
		if err := put(st.ids[i]); err != nil {
			return err
		}
		if err := put(st.leaf[i]); err != nil {
			return err
		}
	}
	if _, err := bw.Write(st.arena); err != nil {
		return err
	}
	return bw.Flush()
}

// Load restores a PayloadStore snapshot; geometry and stride (and hence
// sealing configuration) must match.
func (st *PayloadStore) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var u64 [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	magic, err := get()
	if err != nil {
		return err
	}
	if magic != snapshotMagic+2 {
		return fmt.Errorf("oram: bad store snapshot magic %#x", magic)
	}
	n, err := get()
	if err != nil {
		return err
	}
	if n != uint64(st.geom.TotalSlots()) {
		return fmt.Errorf("oram: store snapshot has %d slots, geometry needs %d", n, st.geom.TotalSlots())
	}
	stride, err := get()
	if err != nil {
		return err
	}
	if stride != uint64(st.stride) {
		return fmt.Errorf("oram: store snapshot stride %d != %d (sealing mismatch?)", stride, st.stride)
	}
	for i := range st.ids {
		if st.ids[i], err = get(); err != nil {
			return err
		}
		if st.leaf[i], err = get(); err != nil {
			return err
		}
	}
	if _, err := io.ReadFull(br, st.arena); err != nil {
		return err
	}
	return nil
}
