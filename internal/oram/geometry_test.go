package oram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeafBitsFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{8 << 20, 23},  // the paper's 8M configuration
		{16 << 20, 24}, // 16M
		{10131227, 24}, // Kaggle's largest table
		{262144, 18},   // XNLI vocabulary
		{1<<40 - 1, 40}, {1 << 39, 39},
	}
	for _, c := range cases {
		if got := LeafBitsFor(c.n); got != c.want {
			t.Errorf("LeafBitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestUniformGeometry(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{LeafBits: 4, LeafZ: 4, BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if g.Levels() != 5 {
		t.Errorf("Levels = %d, want 5", g.Levels())
	}
	if g.Leaves() != 16 {
		t.Errorf("Leaves = %d, want 16", g.Leaves())
	}
	if g.TotalBuckets() != 31 {
		t.Errorf("TotalBuckets = %d, want 31", g.TotalBuckets())
	}
	if g.TotalSlots() != 31*4 {
		t.Errorf("TotalSlots = %d, want %d", g.TotalSlots(), 31*4)
	}
	if g.PathSlots() != 5*4 {
		t.Errorf("PathSlots = %d, want 20", g.PathSlots())
	}
	if g.PathBytes() != 20*128 {
		t.Errorf("PathBytes = %d, want %d", g.PathBytes(), 20*128)
	}
	for lvl := 0; lvl < g.Levels(); lvl++ {
		if g.BucketSize(lvl) != 4 {
			t.Errorf("BucketSize(%d) = %d, want 4", lvl, g.BucketSize(lvl))
		}
	}
}

// TestPaperTable1PathORAMSizes checks Table I's PathORAM server-storage
// column: 8M×128B → ~8 GB, 16M×128B → ~16 GB, Kaggle (10,131,227×128B) →
// ~16 GB. (The XNLI row is known-inconsistent in the paper; see DESIGN.md.)
func TestPaperTable1PathORAMSizes(t *testing.T) {
	cases := []struct {
		name      string
		entries   uint64
		blockSize int
		wantGB    float64
		tolGB     float64
	}{
		{"8M", 8 << 20, 128, 8, 1},
		{"16M", 16 << 20, 128, 16, 2},
		{"Kaggle", 10131227, 128, 16, 2},
	}
	for _, c := range cases {
		g := MustGeometry(GeometryConfig{
			LeafBits:  LeafBitsFor(c.entries),
			LeafZ:     4,
			BlockSize: c.blockSize,
		})
		gotGB := float64(g.ServerBytes()) / (1 << 30)
		if gotGB < c.wantGB-c.tolGB || gotGB > c.wantGB+c.tolGB {
			t.Errorf("%s: server bytes = %.2f GB, want %.0f±%.0f GB", c.name, gotGB, c.wantGB, c.tolGB)
		}
	}
}

// TestFatTreePaperExample checks §V's worked example: leaf bucket 5 with 6
// levels gives bucket sizes 10,9,8,7,6,5 from root to leaf.
func TestFatTreePaperExample(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{
		LeafBits: 5, LeafZ: 5, RootZ: 10, Profile: ProfileLinear, BlockSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 9, 8, 7, 6, 5}
	for lvl, w := range want {
		if got := g.BucketSize(lvl); got != w {
			t.Errorf("BucketSize(%d) = %d, want %d", lvl, got, w)
		}
	}
}

func TestFatTreeMemNeutralShape(t *testing.T) {
	// §VIII-C: fat tree 9→5 vs normal Z=6 must use less memory at depth
	// ~20 (paper reports 16.6% less at their scale).
	fat := MustGeometry(GeometryConfig{LeafBits: 20, LeafZ: 5, RootZ: 9, Profile: ProfileLinear, BlockSize: 128})
	wide := MustGeometry(GeometryConfig{LeafBits: 20, LeafZ: 6, BlockSize: 128})
	if fat.ServerBytes() >= wide.ServerBytes() {
		t.Errorf("fat 9→5 (%d B) should use less memory than uniform Z=6 (%d B)", fat.ServerBytes(), wide.ServerBytes())
	}
	saving := 1 - float64(fat.ServerBytes())/float64(wide.ServerBytes())
	if saving < 0.10 || saving > 0.25 {
		t.Errorf("memory saving = %.1f%%, expected roughly the paper's 16.6%% (10-25%% band)", saving*100)
	}
}

func TestProfiles(t *testing.T) {
	step := MustGeometry(GeometryConfig{LeafBits: 7, LeafZ: 4, RootZ: 8, Profile: ProfileStep, BlockSize: 0})
	if step.BucketSize(0) != 8 || step.BucketSize(7) != 4 {
		t.Errorf("step profile ends: root=%d leaf=%d, want 8/4", step.BucketSize(0), step.BucketSize(7))
	}
	exp := MustGeometry(GeometryConfig{LeafBits: 7, LeafZ: 4, RootZ: 16, Profile: ProfileExp, BlockSize: 0})
	if exp.BucketSize(7) != 4 || exp.BucketSize(6) != 8 || exp.BucketSize(5) != 16 || exp.BucketSize(0) != 16 {
		t.Errorf("exp profile = %d,%d,%d,...,%d; want 16,...,16,8,4",
			exp.BucketSize(0), exp.BucketSize(5), exp.BucketSize(6), exp.BucketSize(7))
	}
	for _, p := range []Profile{ProfileUniform, ProfileLinear, ProfileStep, ProfileExp} {
		if p.String() == "" {
			t.Errorf("empty String() for profile %d", p)
		}
	}
}

func TestGeometryErrors(t *testing.T) {
	bad := []GeometryConfig{
		{LeafBits: 0, LeafZ: 4},
		{LeafBits: 41, LeafZ: 4},
		{LeafBits: 4, LeafZ: 0},
		{LeafBits: 4, LeafZ: 4, BlockSize: -1},
		{LeafBits: 4, LeafZ: 4, RootZ: 2, Profile: ProfileLinear},
	}
	for i, cfg := range bad {
		if _, err := NewGeometry(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestNodeAtAndSlotIndex(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 3, LeafZ: 2, BlockSize: 0})
	// Leaf 5 = 0b101: path nodes are 0, 1, 2(=0b10), 5(=0b101).
	wantNodes := []uint64{0, 1, 2, 5}
	for lvl, w := range wantNodes {
		if got := g.NodeAt(5, lvl); got != w {
			t.Errorf("NodeAt(5,%d) = %d, want %d", lvl, got, w)
		}
	}
	// Slot indices must be unique across the whole tree.
	seen := make(map[int64]bool)
	for lvl := 0; lvl < g.Levels(); lvl++ {
		for node := uint64(0); node < 1<<uint(lvl); node++ {
			for s := 0; s < g.BucketSize(lvl); s++ {
				i := g.SlotIndex(lvl, node, s)
				if i < 0 || i >= g.TotalSlots() {
					t.Fatalf("SlotIndex(%d,%d,%d) = %d out of range", lvl, node, s, i)
				}
				if seen[i] {
					t.Fatalf("SlotIndex(%d,%d,%d) = %d collides", lvl, node, s, i)
				}
				seen[i] = true
			}
		}
	}
	if int64(len(seen)) != g.TotalSlots() {
		t.Errorf("covered %d slots, want %d", len(seen), g.TotalSlots())
	}
}

func TestCommonLevelProperties(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 12, LeafZ: 4, BlockSize: 0})
	rng := rand.New(rand.NewSource(1))
	f := func(aRaw, bRaw uint16) bool {
		a := Leaf(uint64(aRaw) % g.Leaves())
		b := Leaf(uint64(bRaw) % g.Leaves())
		cl := g.CommonLevel(a, b)
		if cl < 0 || cl > g.LeafBits() {
			return false
		}
		if g.CommonLevel(b, a) != cl {
			return false // symmetry
		}
		if a == b && cl != g.LeafBits() {
			return false
		}
		// Definition: nodes agree at all levels <= cl, disagree after.
		for lvl := 0; lvl <= g.LeafBits(); lvl++ {
			same := g.NodeAt(a, lvl) == g.NodeAt(b, lvl)
			if (lvl <= cl) != same {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGeometryString(t *testing.T) {
	u := MustGeometry(GeometryConfig{LeafBits: 20, LeafZ: 4, BlockSize: 128})
	if u.String() == "" || u.Profile() != ProfileUniform {
		t.Errorf("bad uniform description %q", u.String())
	}
	f := MustGeometry(GeometryConfig{LeafBits: 20, LeafZ: 4, RootZ: 8, Profile: ProfileLinear, BlockSize: 128})
	if f.String() == "" || f.Profile() != ProfileLinear {
		t.Errorf("bad fat description %q", f.String())
	}
}
