package oram

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// RecursiveMap stores the position map in smaller ORAMs, recursively, as
// the original PathORAM construction describes: leaves for N blocks are
// packed EntriesPerBlock to a block and kept in an ORAM of N/EntriesPerBlock
// blocks, whose own position map recurses until it fits a flat in-client
// map of at most Cutoff entries. Trusted client state shrinks from O(N) to
// O(log N) (the stashes plus the final flat map), at the cost of one
// oblivious access per recursion level per Get/Set.
//
// The LAORAM paper itself assumes the flat map fits the trainer GPU's HBM
// (§III); RecursiveMap is the substrate a deployment without that luxury
// would use, and an ablation point for client-memory/latency trade-offs.
type RecursiveMap struct {
	n       uint64
	epb     int // entries per packed block
	clients []*Client
	flat    *PosMap
}

var _ PositionMap = (*RecursiveMap)(nil)

// RecursiveConfig sizes a RecursiveMap.
type RecursiveConfig struct {
	// Blocks is the number of data-ORAM blocks the map must cover.
	Blocks uint64
	// EntriesPerBlock is how many 4-byte leaf entries pack into one map
	// block (default 64 → 256-byte map blocks).
	EntriesPerBlock int
	// Cutoff is the maximum size of the final flat map (default 1024).
	Cutoff uint64
	// LeafZ is the bucket size of the map ORAM trees (default 4).
	LeafZ int
	// Rand drives the map ORAMs' randomness. Required.
	Rand *rand.Rand
	// NewStore builds server storage for each map level; nil uses
	// in-memory MetaStore-backed... no: map blocks carry real payloads,
	// so nil uses NewPayloadStore without sealing. Supply a factory to
	// count traffic or seal map blocks.
	NewStore func(*Geometry) (Store, error)
}

func (c *RecursiveConfig) setDefaults() error {
	if c.Blocks == 0 {
		return fmt.Errorf("oram: RecursiveConfig.Blocks must be > 0")
	}
	if c.Rand == nil {
		return fmt.Errorf("oram: RecursiveConfig.Rand is required")
	}
	if c.EntriesPerBlock == 0 {
		c.EntriesPerBlock = 64
	}
	if c.EntriesPerBlock < 2 {
		return fmt.Errorf("oram: EntriesPerBlock must be >= 2, got %d", c.EntriesPerBlock)
	}
	if c.Cutoff == 0 {
		c.Cutoff = 1024
	}
	if c.LeafZ == 0 {
		c.LeafZ = 4
	}
	if c.NewStore == nil {
		c.NewStore = func(g *Geometry) (Store, error) { return NewPayloadStore(g, nil) }
	}
	return nil
}

// NewRecursiveMap builds the recursion. Every level is fully initialised
// (all entries NoLeaf), so the map is immediately usable by a data-ORAM
// Load.
func NewRecursiveMap(cfg RecursiveConfig) (*RecursiveMap, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rm := &RecursiveMap{n: cfg.Blocks, epb: cfg.EntriesPerBlock}

	// Level sizes: blocks covered by each map ORAM, largest first.
	var sizes []uint64
	for n := cfg.Blocks; n > cfg.Cutoff; {
		n = (n + uint64(cfg.EntriesPerBlock) - 1) / uint64(cfg.EntriesPerBlock)
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		// Degenerate: the whole map fits the flat cutoff.
		rm.flat = NewPosMap(cfg.Blocks)
		return rm, nil
	}
	// The deepest level's own position map is flat.
	rm.flat = NewPosMap(sizes[len(sizes)-1])

	// Build clients from the deepest level up, wiring each level's
	// position map to the next-deeper structure.
	blockSize := 4 * cfg.EntriesPerBlock
	clients := make([]*Client, len(sizes))
	for i := len(sizes) - 1; i >= 0; i-- {
		g, err := NewGeometry(GeometryConfig{
			LeafBits:  LeafBitsFor(sizes[i]),
			LeafZ:     cfg.LeafZ,
			BlockSize: blockSize,
		})
		if err != nil {
			return nil, err
		}
		st, err := cfg.NewStore(g)
		if err != nil {
			return nil, err
		}
		var pm PositionMap
		if i == len(sizes)-1 {
			pm = rm.flat
		} else {
			pm = &packedView{client: clients[i+1], epb: cfg.EntriesPerBlock, n: sizes[i]}
		}
		cl, err := NewClient(ClientConfig{
			Store:     st,
			Rand:      cfg.Rand,
			Evict:     PaperEvict,
			StashHits: true,
			Blocks:    sizes[i],
			PosMap:    pm,
		})
		if err != nil {
			return nil, err
		}
		// Initialise all packed entries to NoLeaf.
		empty := emptyPackedBlock(cfg.EntriesPerBlock)
		if err := cl.Load(sizes[i], nil, func(BlockID) []byte {
			out := make([]byte, len(empty))
			copy(out, empty)
			return out
		}); err != nil {
			return nil, err
		}
		clients[i] = cl
	}
	rm.clients = clients
	return rm, nil
}

func emptyPackedBlock(epb int) []byte {
	b := make([]byte, 4*epb)
	for i := 0; i < epb; i++ {
		binary.LittleEndian.PutUint32(b[4*i:], noLeaf32)
	}
	return b
}

// Levels returns the number of ORAM levels in the recursion (0 = flat).
func (rm *RecursiveMap) Levels() int { return len(rm.clients) }

// Len implements PositionMap.
func (rm *RecursiveMap) Len() uint64 { return rm.n }

// Bytes implements PositionMap: the trusted client state is the flat tail
// map plus each level's stash (bounded by its eviction watermark); packed
// blocks live on untrusted storage.
func (rm *RecursiveMap) Bytes() int64 {
	total := rm.flat.Bytes()
	for _, c := range rm.clients {
		total += int64(c.Stash().Len()) * int64(4*rm.epb)
	}
	return total
}

// ServerBytes returns the untrusted storage consumed by the map ORAMs.
func (rm *RecursiveMap) ServerBytes() int64 {
	var total int64
	for _, c := range rm.clients {
		total += c.Geometry().ServerBytes()
	}
	return total
}

// Get implements PositionMap via one oblivious access per level.
func (rm *RecursiveMap) Get(id BlockID) Leaf {
	if len(rm.clients) == 0 {
		return rm.flat.Get(id)
	}
	block := uint64(id) / uint64(rm.epb)
	off := int(uint64(id) % uint64(rm.epb))
	payload, err := rm.clients[0].Read(BlockID(block))
	if err != nil {
		// PositionMap's interface is error-free (the flat map cannot
		// fail); a broken map ORAM is unrecoverable state corruption.
		panic(fmt.Sprintf("oram: recursive map read: %v", err))
	}
	v := binary.LittleEndian.Uint32(payload[4*off:])
	if v == noLeaf32 {
		return NoLeaf
	}
	return Leaf(v)
}

// Set implements PositionMap via an oblivious read-modify-write.
func (rm *RecursiveMap) Set(id BlockID, l Leaf) {
	if len(rm.clients) == 0 {
		rm.flat.Set(id, l)
		return
	}
	block := uint64(id) / uint64(rm.epb)
	off := int(uint64(id) % uint64(rm.epb))
	v := noLeaf32
	if l != NoLeaf {
		if uint64(l) >= uint64(noLeaf32) {
			panic(fmt.Sprintf("oram: leaf %d overflows packed entry", l))
		}
		v = uint32(l)
	}
	err := rm.clients[0].Update(BlockID(block), func(payload []byte) {
		binary.LittleEndian.PutUint32(payload[4*off:], v)
	})
	if err != nil {
		panic(fmt.Sprintf("oram: recursive map update: %v", err))
	}
}

// Known implements PositionMap.
func (rm *RecursiveMap) Known(id BlockID) bool { return rm.Get(id) != NoLeaf }

// packedView adapts a map-ORAM client into the PositionMap its next-upper
// level needs: entry i of this view is the 4-byte leaf at offset i%epb of
// packed block i/epb.
type packedView struct {
	client *Client
	epb    int
	n      uint64
}

var _ PositionMap = (*packedView)(nil)

func (pv *packedView) Len() uint64 { return pv.n }

func (pv *packedView) Bytes() int64 { return 0 } // state lives in the deeper level

func (pv *packedView) Get(id BlockID) Leaf {
	payload, err := pv.client.Read(BlockID(uint64(id) / uint64(pv.epb)))
	if err != nil {
		panic(fmt.Sprintf("oram: packed view read: %v", err))
	}
	off := int(uint64(id) % uint64(pv.epb))
	v := binary.LittleEndian.Uint32(payload[4*off:])
	if v == noLeaf32 {
		return NoLeaf
	}
	return Leaf(v)
}

func (pv *packedView) Set(id BlockID, l Leaf) {
	v := noLeaf32
	if l != NoLeaf {
		v = uint32(l)
	}
	off := int(uint64(id) % uint64(pv.epb))
	err := pv.client.Update(BlockID(uint64(id)/uint64(pv.epb)), func(payload []byte) {
		binary.LittleEndian.PutUint32(payload[4*off:], v)
	})
	if err != nil {
		panic(fmt.Sprintf("oram: packed view update: %v", err))
	}
}

func (pv *packedView) Known(id BlockID) bool { return pv.Get(id) != NoLeaf }

// Update performs an oblivious read-modify-write of one block in a single
// ORAM access: the block is fetched, fn mutates its payload in place, and
// the path is written back. Used by the recursive position map.
func (c *Client) Update(id BlockID, fn func(payload []byte)) error {
	if uint64(id) >= c.pos.Len() {
		return fmt.Errorf("oram: block %d out of range (have %d blocks)", id, c.pos.Len())
	}
	c.stats.Accesses++
	if c.stashHits && c.stash.Contains(id) {
		c.stats.StashHits++
		p, _ := c.stash.Payload(id)
		if p == nil {
			return fmt.Errorf("oram: Update of metadata-only block %d", id)
		}
		fn(p)
		_, err := c.MaybeEvict()
		return err
	}
	leaf := c.pos.Get(id)
	if leaf == NoLeaf {
		return fmt.Errorf("oram: Update of unwritten block %d", id)
	}
	if err := c.ReadPath(leaf); err != nil {
		return err
	}
	c.stats.PathReads++
	p, ok := c.stash.Payload(id)
	if !ok {
		return fmt.Errorf("oram: block %d not found on its assigned path %d (tree corrupt)", id, leaf)
	}
	if p == nil {
		return fmt.Errorf("oram: Update of metadata-only block %d", id)
	}
	newLeaf := c.RandomLeaf()
	c.pos.Set(id, newLeaf)
	c.stash.SetLeaf(id, newLeaf)
	c.stats.Remaps++
	fn(p)
	if err := c.WriteBackPath(leaf); err != nil {
		return err
	}
	c.stats.PathWrites++
	_, err := c.MaybeEvict()
	return err
}
