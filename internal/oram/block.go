// Package oram implements the Path ORAM substrate the paper builds on:
// binary-tree (and fat-tree) server storage, position map, stash with greedy
// write-back, and background eviction. It corresponds to §II of the paper
// (Background: Oblivious RAM, PathORAM, Stash Management) and §V (the
// fat-tree organisation), and is the layer on top of which the LAORAM client
// (internal/core) and the superblock machinery (internal/superblock) sit.
//
// The package is deliberately free of any look-ahead logic: everything here
// behaves exactly like the paper's PathORAM baseline so that LAORAM's gains
// are measured against a faithful reference.
package oram

import "fmt"

// BlockID identifies a real data block (an embedding-table row in the
// paper's setting). IDs are dense: a table with N rows uses IDs 0..N-1.
type BlockID uint64

// DummyID marks an empty slot in the tree. Dummy slots carry no payload and
// are never entered into the stash.
const DummyID = BlockID(^uint64(0))

// Leaf names a path in the ORAM tree by its leaf index, 0..Leaves()-1.
// "Path p" means the set of buckets from the root to leaf p.
type Leaf uint64

// NoLeaf is the position-map sentinel for a block that has never been
// placed (it lives only in the stash, or does not exist yet).
const NoLeaf = Leaf(^uint64(0))

// Op distinguishes the two ORAM access types. PathORAM makes them
// indistinguishable on the bus; the type exists only for the client API.
type Op uint8

const (
	// OpRead fetches the block's payload.
	OpRead Op = iota
	// OpWrite replaces the block's payload.
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Slot is one block position inside a bucket as seen by the client after
// decryption. A slot either holds a real block (ID != DummyID) together with
// its assigned leaf, or is a dummy.
//
// Payload is nil when the underlying store is metadata-only (MetaStore);
// all client logic must treat a nil payload as "simulated bytes".
type Slot struct {
	ID      BlockID
	Leaf    Leaf
	Payload []byte
}

// Dummy reports whether the slot is empty.
func (s *Slot) Dummy() bool { return s.ID == DummyID }

// Clear resets the slot to a dummy.
func (s *Slot) Clear() {
	s.ID = DummyID
	s.Leaf = 0
	s.Payload = nil
}

// DummySlot returns an empty slot value.
func DummySlot() Slot { return Slot{ID: DummyID} }
