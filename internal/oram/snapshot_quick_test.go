package oram

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSnapshotRoundTripProperty: testing/quick property that
// SaveState/LoadState ∘ Save/Load is the identity across random
// geometries, stash occupancies and sealed/unsealed/metadata-only payload
// stores. Identity is checked two ways: every block reads back equal, and
// re-snapshotting the restored pair reproduces the original snapshot
// byte-for-byte (so a second-generation restore sees exactly what the
// first did).
func TestSnapshotRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		leafBits := 2 + rng.Intn(5)
		leafZ := 1 + rng.Intn(4)
		blockSize := 0
		var sealer *xorSealer
		switch rng.Intn(3) {
		case 1:
			blockSize = 8 * (1 + rng.Intn(3))
		case 2:
			blockSize = 8 * (1 + rng.Intn(3))
			sealer = &xorSealer{key: byte(rng.Intn(255) + 1)}
		}
		g := MustGeometry(GeometryConfig{LeafBits: leafBits, LeafZ: leafZ, BlockSize: blockSize})
		blocks := uint64(1) << uint(leafBits)

		newStore := func() Store {
			if blockSize == 0 {
				return NewMetaStore(g)
			}
			var s Sealer
			if sealer != nil {
				s = sealer
			}
			ps, err := NewPayloadStore(g, s)
			if err != nil {
				t.Fatal(err)
			}
			return ps
		}
		newClient := func(st Store, rseed int64) *Client {
			c, err := NewClient(ClientConfig{
				Store: st, Rand: rand.New(rand.NewSource(rseed)),
				Evict: PaperEvict, StashHits: true, Blocks: blocks,
			})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}

		st := newStore()
		c := newClient(st, seed+1)
		ref := make(map[BlockID][]byte)
		if err := c.Load(blocks, nil, nil); err != nil {
			t.Fatal(err)
		}
		// Random accesses drive blocks into the stash; the narrow
		// geometries (leafZ 1, shallow trees) push occupancy high.
		for i, n := 0, 20+rng.Intn(200); i < n; i++ {
			id := BlockID(rng.Int63n(int64(blocks)))
			if blockSize > 0 && rng.Intn(2) == 0 {
				v := make([]byte, blockSize)
				rng.Read(v)
				if err := c.Write(id, v); err != nil {
					t.Fatal(err)
				}
				ref[id] = v
			} else if _, err := c.Read(id); err != nil {
				t.Fatal(err)
			}
		}

		var clientSnap, storeSnap bytes.Buffer
		if err := c.SaveState(&clientSnap); err != nil {
			t.Fatal(err)
		}
		if err := st.(Snapshotter).Save(&storeSnap); err != nil {
			t.Fatal(err)
		}

		st2 := newStore()
		if err := st2.(Snapshotter).Load(bytes.NewReader(storeSnap.Bytes())); err != nil {
			t.Fatal(err)
		}
		c2 := newClient(st2, seed+2) // different RNG: state restore must not care
		if err := c2.LoadState(bytes.NewReader(clientSnap.Bytes())); err != nil {
			t.Fatal(err)
		}

		// Re-snapshot before reading (reads mutate ORAM state).
		var clientSnap2, storeSnap2 bytes.Buffer
		if err := c2.SaveState(&clientSnap2); err != nil {
			t.Fatal(err)
		}
		if err := st2.(Snapshotter).Save(&storeSnap2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(clientSnap.Bytes(), clientSnap2.Bytes()) {
			t.Logf("seed %d: restored client snapshot differs", seed)
			return false
		}
		if !bytes.Equal(storeSnap.Bytes(), storeSnap2.Bytes()) {
			t.Logf("seed %d: restored store snapshot differs", seed)
			return false
		}
		for id, want := range ref {
			got, err := c2.Read(id)
			if err != nil {
				t.Fatalf("seed %d: restored read %d: %v", seed, id, err)
			}
			if !bytes.Equal(got, want) {
				t.Logf("seed %d: block %d = %x want %x", seed, id, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(42))}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCorruptHeaders: table test that truncated and corrupted
// snapshot streams are rejected with an error — never a panic, never a
// silent partial restore.
func TestSnapshotCorruptHeaders(t *testing.T) {
	const blocks = 16
	c, _ := newTestClient(t, 4, blocks, 8, EvictConfig{})
	if err := c.Load(blocks, nil, func(BlockID) []byte { return make([]byte, 8) }); err != nil {
		t.Fatal(err)
	}
	var clientSnap bytes.Buffer
	if err := c.SaveState(&clientSnap); err != nil {
		t.Fatal(err)
	}
	g := MustGeometry(GeometryConfig{LeafBits: 4, LeafZ: 4, BlockSize: 8})
	ps, err := NewPayloadStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var storeSnap bytes.Buffer
	if err := ps.Save(&storeSnap); err != nil {
		t.Fatal(err)
	}

	flip := func(b []byte, off int) []byte {
		out := bytes.Clone(b)
		out[off] ^= 0xFF
		return out
	}
	u64At := func(b []byte, off int, v uint64) []byte {
		out := bytes.Clone(b)
		binary.LittleEndian.PutUint64(out[off:], v)
		return out
	}

	cases := []struct {
		name string
		load func([]byte) error
		data []byte
	}{
		{"client/empty", c.LoadState2, nil},
		{"client/truncated-magic", c.LoadState2, clientSnap.Bytes()[:5]},
		{"client/truncated-posmap", c.LoadState2, clientSnap.Bytes()[:16+blocks*4]},
		{"client/truncated-stash-count", c.LoadState2, clientSnap.Bytes()[:16+blocks*8+3]},
		{"client/bad-magic", c.LoadState2, flip(clientSnap.Bytes(), 0)},
		{"client/wrong-block-count", c.LoadState2, u64At(clientSnap.Bytes(), 8, blocks*2)},
		{"client/implausible-stash", c.LoadState2, u64At(clientSnap.Bytes(), 16+blocks*8, 1<<40)},
		{"store/empty", ps.load2, nil},
		{"store/truncated-header", ps.load2, storeSnap.Bytes()[:12]},
		{"store/bad-magic", ps.load2, flip(storeSnap.Bytes(), 0)},
		{"store/wrong-slot-count", ps.load2, u64At(storeSnap.Bytes(), 8, 3)},
		{"store/wrong-stride", ps.load2, u64At(storeSnap.Bytes(), 16, 999)},
		{"store/truncated-arena", ps.load2, storeSnap.Bytes()[:storeSnap.Len()-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.load(tc.data); err == nil {
				t.Error("corrupted snapshot accepted")
			}
		})
	}
}

// LoadState2/load2 adapt the io.Reader loaders to []byte for the table
// test above.
func (c *Client) LoadState2(b []byte) error   { return c.LoadState(bytes.NewReader(b)) }
func (st *PayloadStore) load2(b []byte) error { return st.Load(bytes.NewReader(b)) }

// TestCountingStoreSnapshotForwarding: the counting wrapper checkpoints
// the store it wraps (the laoram stack always hands the engine a
// CountingStore, so the shard-level checkpoint path goes through here).
func TestCountingStoreSnapshotForwarding(t *testing.T) {
	g := MustGeometry(GeometryConfig{LeafBits: 3, LeafZ: 4, BlockSize: 0})
	inner := NewMetaStore(g)
	cs := NewCountingStore(inner, nil)
	if err := cs.WriteSlot(2, 1, 0, Slot{ID: 5, Leaf: 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cs2 := NewCountingStore(NewMetaStore(g), nil)
	if err := cs2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := cs2.ReadSlot(2, 1, 0, &s); err != nil {
		t.Fatal(err)
	}
	if s.ID != 5 || s.Leaf != 3 {
		t.Errorf("forwarded snapshot slot %+v", s)
	}
	// A wrapper around a non-snapshottable store refuses rather than
	// silently skipping.
	type bare struct{ Store }
	nosnap := NewCountingStore(bare{inner}, nil)
	if err := nosnap.Save(&buf); err == nil {
		t.Error("Save through non-Snapshotter accepted")
	}
	if err := nosnap.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Load through non-Snapshotter accepted")
	}
}

// TestStashRestorePeak: RestorePeak resumes the high-water trajectory and
// clamps to the live occupancy lower bound.
func TestStashRestorePeak(t *testing.T) {
	s := NewStash()
	for i := 0; i < 5; i++ {
		if err := s.Put(BlockID(i), Leaf(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	s.RestorePeak(17)
	if s.Peak() != 17 {
		t.Errorf("Peak = %d, want 17", s.Peak())
	}
	s.RestorePeak(2) // below current size: clamp up
	if s.Peak() != 5 {
		t.Errorf("Peak = %d, want clamp to 5", s.Peak())
	}
}
